/**
 * @file
 * Tests for the driver layer: configuration builders (incl. the Table
 * 5 customizations), the algorithm factory, report formatting, and the
 * profiling ULMT.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/profiler.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"

namespace {

TEST(Factory, NamesRoundTrip)
{
    for (core::UlmtAlgo a :
         {core::UlmtAlgo::Base, core::UlmtAlgo::Chain,
          core::UlmtAlgo::Repl, core::UlmtAlgo::Seq1,
          core::UlmtAlgo::Seq4, core::UlmtAlgo::Seq4Base,
          core::UlmtAlgo::Seq4Repl, core::UlmtAlgo::Seq1Repl,
          core::UlmtAlgo::Adaptive, core::UlmtAlgo::Profile}) {
        EXPECT_EQ(core::parseUlmtAlgo(core::to_string(a)), a);
        core::UlmtSpec spec;
        spec.algo = a;
        spec.numRows = 1024;
        auto algo = core::makeAlgorithm(spec);
        ASSERT_NE(algo, nullptr) << core::to_string(a);
        EXPECT_EQ(algo->name(), core::to_string(a));
    }
    core::UlmtSpec none;
    none.algo = core::UlmtAlgo::None;
    EXPECT_EQ(core::makeAlgorithm(none), nullptr);
}

TEST(Factory, Table4Defaults)
{
    core::CorrelationParams base = core::baseDefaults(64 * 1024);
    EXPECT_EQ(base.numSucc, 4u);
    EXPECT_EQ(base.assoc, 4u);
    core::CorrelationParams cr = core::chainReplDefaults(64 * 1024);
    EXPECT_EQ(cr.numSucc, 2u);
    EXPECT_EQ(cr.assoc, 2u);
    EXPECT_EQ(cr.numLevels, 3u);
}

TEST(Experiment, Table5Customizations)
{
    driver::ExperimentOptions o;
    bool customized = false;

    // CG: Seq1+Repl in Verbose mode, Conven4 on.
    driver::SystemConfig cg = driver::customConfig(o, "CG", customized);
    EXPECT_TRUE(customized);
    EXPECT_TRUE(cg.conven4);
    EXPECT_TRUE(cg.ulmt.verbose);
    EXPECT_EQ(cg.ulmt.algo, core::UlmtAlgo::Seq1Repl);

    // MST and Mcf: Repl with NumLevels = 4.
    for (const char *app : {"MST", "Mcf"}) {
        driver::SystemConfig c =
            driver::customConfig(o, app, customized);
        EXPECT_TRUE(customized) << app;
        EXPECT_EQ(c.ulmt.algo, core::UlmtAlgo::Repl);
        EXPECT_EQ(c.ulmt.numLevels, 4u);
        EXPECT_FALSE(c.ulmt.verbose);
    }

    // Everyone else: plain Conven4+Repl.
    driver::SystemConfig other =
        driver::customConfig(o, "Gap", customized);
    EXPECT_FALSE(customized);
    EXPECT_EQ(other.ulmt.algo, core::UlmtAlgo::Repl);
    EXPECT_EQ(other.ulmt.numLevels, 3u);
}

TEST(Experiment, ConfigBuilders)
{
    driver::ExperimentOptions o;
    EXPECT_EQ(driver::noPrefConfig(o).label, "NoPref");
    EXPECT_FALSE(driver::noPrefConfig(o).conven4);
    EXPECT_TRUE(driver::conven4Config(o).conven4);
    const driver::SystemConfig u =
        driver::ulmtConfig(o, core::UlmtAlgo::Chain, "Mcf");
    EXPECT_EQ(u.label, "Chain");
    EXPECT_EQ(u.ulmt.numRows, workloads::tableNumRows("Mcf"));
    const driver::SystemConfig c = driver::conven4PlusUlmtConfig(
        o, core::UlmtAlgo::Repl, "Tree");
    EXPECT_EQ(c.label, "Conven4+Repl");
    EXPECT_TRUE(c.conven4);
    EXPECT_EQ(c.ulmt.numRows, 8u * 1024u);
}

TEST(Report, TextTableAligns)
{
    driver::TextTable t({"A", "LongHeader"});
    t.addRow({"xx", "1"});
    t.addRow({"y", "22"});
    const std::string s = t.render();
    EXPECT_NE(s.find("A   LongHeader"), std::string::npos);
    EXPECT_NE(s.find("xx  1"), std::string::npos);
    EXPECT_NE(s.find("y   22"), std::string::npos);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(driver::fmt(1.2345), "1.23");
    EXPECT_EQ(driver::fmt(1.2345, 1), "1.2");
    EXPECT_EQ(driver::fmtPercent(0.375), "37.5%");
    EXPECT_EQ(driver::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(driver::mean({}), 0.0);
}

TEST(Profiler, ReportsHotPagesAndSets)
{
    core::ProfilingUlmt prof(4096, 2048, 64);
    core::NullCostTracker nc;
    std::vector<sim::Addr> discard;
    // 100 misses on page 3, 10 on page 7, sequential within page 3.
    for (int i = 0; i < 100; ++i) {
        prof.prefetchStep(3 * 4096 + (i % 64) * 64, discard, nc);
        prof.learnStep(3 * 4096 + (i % 64) * 64, nc);
    }
    for (int i = 0; i < 10; ++i)
        prof.learnStep(7 * 4096 + i * 64, nc);

    const core::MissProfile p = prof.report(5);
    EXPECT_EQ(p.misses, 110u);
    ASSERT_FALSE(p.hottestPages.empty());
    EXPECT_EQ(p.hottestPages[0].first, 3u);
    EXPECT_EQ(p.hottestPages[0].second, 100u);
    EXPECT_GT(p.sequentialFraction, 0.5);
    EXPECT_GT(p.distinctLines, 60u);
    EXPECT_FALSE(p.hottestSets.empty());
}

} // namespace
