/**
 * @file
 * Tests for the trace capture & replay subsystem: format round-trips
 * (including the empty, compute-only and cross-block dependence edge
 * cases), loud rejection of corrupted/truncated files, the external
 * text-trace importer, and the headline determinism guarantee --
 * replaying a captured corpus produces bit-identical hierarchy stats
 * to the live synthetic run it was captured from, both for freshly
 * recorded traces and for the committed golden corpus (which guards
 * against on-disk format drift).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "trace/import.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"
#include "workloads/trace_replay.hh"

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<cpu::TraceRecord>
readAll(const std::string &path)
{
    trace::TraceReader reader(path);
    std::vector<cpu::TraceRecord> out;
    cpu::TraceRecord rec;
    while (reader.next(rec))
        out.push_back(rec);
    return out;
}

void
expectSameRecords(const std::vector<cpu::TraceRecord> &a,
                  const std::vector<cpu::TraceRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "record " << i;
        ASSERT_EQ(a[i].computeOps, b[i].computeOps) << "record " << i;
        ASSERT_EQ(a[i].isWrite, b[i].isWrite) << "record " << i;
        ASSERT_EQ(a[i].dependsOnPrev, b[i].dependsOnPrev)
            << "record " << i;
    }
}

/** Flip one byte in the middle of a file. */
void
corruptByte(const std::string &path, long offset_from_start)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset_from_start, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset_from_start, SEEK_SET), 0);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
}

void
truncateBy(const std::string &path, long bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_GT(size, bytes);
    std::vector<char> data(static_cast<std::size_t>(size - bytes));
    ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
    ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f),
              data.size());
    std::fclose(f);
}

TEST(TraceRoundTrip, PreservesAMixedRecordStream)
{
    const std::string path = tmpPath("mixed.ulmttrace");
    std::vector<cpu::TraceRecord> recs;
    sim::Addr addr = 0x1000'0000;
    for (int i = 0; i < 10000; ++i) {
        cpu::TraceRecord r;
        r.computeOps = static_cast<std::uint32_t>(i * 7 % 900);
        if (i % 5 == 4) {
            r.addr = sim::invalidAddr;  // compute-only
        } else {
            // Mix forward and backward deltas, small and huge.
            addr += (i % 3 == 0) ? 64 : (i % 3 == 1 ? -4096 : 1 << 20);
            r.addr = addr;
            r.isWrite = (i % 4 == 0);
            r.dependsOnPrev = (i % 2 == 0);
        }
        recs.push_back(r);
    }

    trace::TraceWriter::Options wo;
    wo.app = "Mixed";
    wo.seed = 0xDEAD;
    wo.scale = 0.25;
    wo.recordsPerBlock = 512;
    {
        trace::TraceWriter w(path, wo);
        for (const auto &r : recs)
            w.append(r);
        w.finish();
        EXPECT_EQ(w.recordsWritten(), recs.size());
    }

    trace::TraceReader reader(path);
    EXPECT_EQ(reader.header().app, "Mixed");
    EXPECT_EQ(reader.header().seed, 0xDEADu);
    EXPECT_DOUBLE_EQ(reader.header().scale, 0.25);
    EXPECT_EQ(reader.summary().records, recs.size());
    EXPECT_GT(reader.summary().blocks, 1u);

    expectSameRecords(readAll(path), recs);
}

TEST(TraceRoundTrip, EmptyTrace)
{
    const std::string path = tmpPath("empty.ulmttrace");
    {
        trace::TraceWriter w(path, {});
        w.finish();
    }
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.summary().records, 0u);
    EXPECT_EQ(reader.summary().blocks, 0u);
    EXPECT_EQ(reader.summary().footprintBytes, 0u);
    cpu::TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));
    EXPECT_FALSE(reader.next(rec));  // stays at a verified end
    reader.rewind();
    EXPECT_FALSE(reader.next(rec));
}

TEST(TraceRoundTrip, ComputeOnlyRecords)
{
    const std::string path = tmpPath("compute.ulmttrace");
    std::vector<cpu::TraceRecord> recs;
    for (int i = 0; i < 500; ++i) {
        cpu::TraceRecord r;
        r.computeOps = static_cast<std::uint32_t>(1 + i);
        r.addr = sim::invalidAddr;
        recs.push_back(r);
    }
    {
        trace::TraceWriter::Options wo;
        wo.recordsPerBlock = 64;
        trace::TraceWriter w(path, wo);
        for (const auto &r : recs)
            w.append(r);
        w.finish();
    }
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.summary().footprintBytes, 0u);
    expectSameRecords(readAll(path), recs);
}

TEST(TraceRoundTrip, DependChainsSpanBlockBoundaries)
{
    const std::string path = tmpPath("chain.ulmttrace");
    // One long pointer chain with a tiny block size, so nearly every
    // block boundary falls inside the chain.
    std::vector<cpu::TraceRecord> recs;
    sim::Addr addr = 0x2000'0000;
    for (int i = 0; i < 1000; ++i) {
        cpu::TraceRecord r;
        r.computeOps = 12;
        addr += 320;
        r.addr = addr;
        r.dependsOnPrev = (i != 0);
        recs.push_back(r);
    }
    {
        trace::TraceWriter::Options wo;
        wo.recordsPerBlock = 3;
        trace::TraceWriter w(path, wo);
        for (const auto &r : recs)
            w.append(r);
        w.finish();
    }
    trace::TraceReader reader(path);
    ASSERT_GT(reader.summary().blocks, 300u);
    expectSameRecords(readAll(path), recs);
}

TEST(TraceRoundTrip, RewindReplaysIdentically)
{
    const std::string path = tmpPath("rewind.ulmttrace");
    {
        trace::TraceWriter::Options wo;
        wo.recordsPerBlock = 10;
        trace::TraceWriter w(path, wo);
        for (int i = 0; i < 100; ++i) {
            cpu::TraceRecord r;
            r.computeOps = static_cast<std::uint32_t>(i);
            r.addr = 0x1000u + static_cast<sim::Addr>(i) * 64;
            w.append(r);
        }
        w.finish();
    }
    trace::TraceReader reader(path);
    cpu::TraceRecord rec;
    std::vector<sim::Addr> first;
    while (reader.next(rec))
        first.push_back(rec.addr);
    reader.rewind();
    std::vector<sim::Addr> second;
    while (reader.next(rec))
        second.push_back(rec.addr);
    EXPECT_EQ(first, second);
}

class TraceCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmpPath("victim.ulmttrace");
        trace::TraceWriter::Options wo;
        wo.app = "Victim";
        wo.recordsPerBlock = 100;
        trace::TraceWriter w(path_, wo);
        for (int i = 0; i < 1000; ++i) {
            cpu::TraceRecord r;
            r.computeOps = 3;
            r.addr = 0x4000u + static_cast<sim::Addr>(i) * 64;
            w.append(r);
        }
        w.finish();
    }

    std::string path_;
};

TEST_F(TraceCorruption, MissingFileRejected)
{
    EXPECT_THROW(trace::TraceReader("/nonexistent/nope.trace"),
                 trace::TraceError);
}

TEST_F(TraceCorruption, BadMagicRejected)
{
    corruptByte(path_, 0);
    EXPECT_THROW(trace::TraceReader reader(path_), trace::TraceError);
}

TEST_F(TraceCorruption, UnsupportedVersionRejected)
{
    corruptByte(path_, 8);  // version field
    try {
        trace::TraceReader reader(path_);
        FAIL() << "corrupt version accepted";
    } catch (const trace::TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(TraceCorruption, TruncatedFileRejectedAtOpen)
{
    // Cut into the last block + trailer: the trailer magic is gone.
    truncateBy(path_, 100);
    try {
        trace::TraceReader reader(path_);
        FAIL() << "truncated trace accepted";
    } catch (const trace::TraceError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(path_), std::string::npos)
            << "diagnostic must name the file: " << what;
    }
}

TEST_F(TraceCorruption, SeverelyTruncatedFileRejected)
{
    // Keep only the first few hundred bytes: header plus a partial
    // first block, no trailer anywhere.
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    truncateBy(path_, size - 300);
    EXPECT_THROW(trace::TraceReader reader(path_), trace::TraceError);
}

TEST_F(TraceCorruption, FlippedPayloadByteFailsChecksum)
{
    // Past the header and first block header: inside payload bytes.
    corruptByte(path_, 200);
    trace::TraceReader reader(path_);  // header/trailer still intact
    cpu::TraceRecord rec;
    EXPECT_THROW(
        {
            while (reader.next(rec)) {
            }
        },
        trace::TraceError);
}

TEST_F(TraceCorruption, NeverASilentShortRead)
{
    // Whatever single byte is flipped anywhere in the file, reading
    // must either produce the full record stream or throw -- sample
    // offsets across header, block framing, payload and trailer.
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);

    for (long off = 0; off < size; off += 997) {
        corruptByte(path_, off);
        std::size_t served = 0;
        bool threw = false;
        try {
            trace::TraceReader reader(path_);
            cpu::TraceRecord rec;
            while (reader.next(rec))
                ++served;
        } catch (const trace::TraceError &) {
            threw = true;
        }
        if (!threw) {
            // Flip decoded cleanly (e.g. hit an address byte whose
            // change stays within the block checksum?) -- impossible:
            // the checksum covers every payload byte, so a clean read
            // must have served every record.
            EXPECT_EQ(served, 1000u) << "silent short read at offset "
                                     << off;
        }
        corruptByte(path_, off);  // restore (XOR is an involution)
    }
}

TEST(TraceImport, ChampSimStyleTextRoundTrip)
{
    const std::string in = tmpPath("sample.txt");
    {
        std::ofstream out(in);
        out << "# pc addr rw\n";
        out << "0x400000 0x10000040 R\n";
        out << "0x400004 0x10000080 W\n";
        out << "0x7f001234,0x20000000,r\n";  // CSV also accepted
        out << "\n";
        out << "0x30000000 W\n";  // 2-column
        out << "1073741824\n";    // 1-column decimal, load
    }
    const std::string out_path = tmpPath("imported.ulmttrace");
    trace::ImportOptions io;
    io.app = "sample";
    io.computeOps = 7;
    {
        trace::TraceWriter::Options wo;
        wo.app = io.app;
        trace::TraceWriter w(out_path, wo);
        EXPECT_EQ(trace::importText(in, w, io), 5u);
        w.finish();
    }

    const std::vector<cpu::TraceRecord> recs = readAll(out_path);
    ASSERT_EQ(recs.size(), 5u);
    EXPECT_EQ(recs[0].addr, 0x10000040u);
    EXPECT_FALSE(recs[0].isWrite);
    EXPECT_EQ(recs[0].computeOps, 7u);
    EXPECT_EQ(recs[1].addr, 0x10000080u);
    EXPECT_TRUE(recs[1].isWrite);
    EXPECT_EQ(recs[2].addr, 0x20000000u);
    EXPECT_FALSE(recs[2].isWrite);
    EXPECT_EQ(recs[3].addr, 0x30000000u);
    EXPECT_TRUE(recs[3].isWrite);
    EXPECT_EQ(recs[4].addr, 1073741824u);
    EXPECT_FALSE(recs[4].isWrite);

    trace::TraceReader reader(out_path);
    EXPECT_EQ(reader.header().app, "sample");
}

TEST(TraceImport, MalformedLineNamesTheLineNumber)
{
    const std::string in = tmpPath("bad.txt");
    {
        std::ofstream out(in);
        out << "0x1000 R\n";
        out << "0x2000 X\n";  // bad r/w marker
    }
    trace::TraceWriter w(tmpPath("bad.ulmttrace"), {});
    try {
        trace::importText(in, w);
        FAIL() << "malformed line accepted";
    } catch (const trace::TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceReplayWorkload, TeeCaptureDoesNotPerturbTheStream)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.02;
    auto direct = workloads::makeWorkload("MST", wp);
    auto captured = workloads::makeWorkload("MST", wp);

    const std::string path = tmpPath("mst_tee.ulmttrace");
    trace::TraceWriter::Options wo;
    wo.app = captured->name();
    wo.seed = wp.seed;
    wo.scale = wp.scale;
    trace::TraceWriter w(path, wo);
    trace::TeeTraceSource tee(*captured, w);

    cpu::TraceRecord rd, rt;
    while (true) {
        const bool hd = direct->next(rd);
        const bool ht = tee.next(rt);
        ASSERT_EQ(hd, ht);
        if (!hd)
            break;
        ASSERT_EQ(rd.addr, rt.addr);
        ASSERT_EQ(rd.computeOps, rt.computeOps);
        ASSERT_EQ(rd.isWrite, rt.isWrite);
        ASSERT_EQ(rd.dependsOnPrev, rt.dependsOnPrev);
    }
    w.finish();

    // The captured file replays the same stream, as a Workload.
    auto replay = workloads::makeWorkload("trace:" + path, wp);
    EXPECT_EQ(replay->name(), "MST");
    EXPECT_EQ(replay->source(), "trace:" + path);
    EXPECT_EQ(replay->traceLength(), direct->traceLength());
    direct->reset();
    cpu::TraceRecord rr;
    while (direct->next(rd)) {
        ASSERT_TRUE(replay->next(rr));
        ASSERT_EQ(rd.addr, rr.addr);
    }
    EXPECT_FALSE(replay->next(rr));

    // reset() rewinds the file-backed stream too.
    replay->reset();
    ASSERT_TRUE(replay->next(rr));
    direct->reset();
    ASSERT_TRUE(direct->next(rd));
    EXPECT_EQ(rd.addr, rr.addr);
}

/** Record a workload to @p path exactly as `ulmt-trace record` does. */
void
recordWorkload(const std::string &app,
               const workloads::WorkloadParams &wp,
               const std::string &path)
{
    auto wl = workloads::makeWorkload(app, wp);
    trace::TraceWriter::Options wo;
    wo.app = wl->name();
    wo.seed = wp.seed;
    wo.scale = wp.scale;
    trace::TraceWriter w(path, wo);
    trace::TeeTraceSource tee(*wl, w);
    cpu::TraceRecord rec;
    while (tee.next(rec)) {
    }
    w.finish();
}

class TraceDeterminism : public ::testing::TestWithParam<const char *>
{
};

/**
 * The acceptance-criteria test: replaying a captured trace yields a
 * bit-identical RunResult fingerprint (all hierarchy/ULMT/memory
 * counters) to the live synthetic run, under a full Conven4+Repl
 * configuration.
 */
TEST_P(TraceDeterminism, ReplayFingerprintMatchesLiveRun)
{
    const std::string app = GetParam();
    driver::ExperimentOptions opt;
    opt.scale = 0.02;

    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    const std::string path = tmpPath(app + "_det.ulmttrace");
    recordWorkload(app, wp, path);

    const std::string trace_name = "trace:" + path;
    const driver::SystemConfig cfg = driver::conven4PlusUlmtConfig(
        opt, core::UlmtAlgo::Repl, app);

    const driver::RunResult live = driver::runOne(app, cfg, opt);
    const driver::RunResult replay =
        driver::runOne(trace_name, cfg, opt);

    EXPECT_EQ(replay.source, trace_name);
    EXPECT_EQ(live.source, "synthetic");
    EXPECT_EQ(driver::resultFingerprint(live),
              driver::resultFingerprint(replay));
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceDeterminism,
                         ::testing::Values("MST", "Tree"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

/**
 * The committed golden corpus still decodes to the exact stream the
 * live kernels generate: this is the on-disk format-drift guard.  The
 * trace's own header provenance (app/scale/seed) configures the live
 * run, so the corpus is self-describing.
 */
class GoldenCorpus : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoldenCorpus, ReplayFingerprintMatchesLiveRun)
{
    const std::string path =
        std::string(ULMT_SOURCE_DIR) + "/corpus/" + GetParam();
    const std::string trace_name = "trace:" + path;

    auto replay_wl = workloads::makeWorkload(trace_name, {});
    const auto &hdr =
        dynamic_cast<workloads::TraceReplayWorkload &>(*replay_wl)
            .traceHeader();

    driver::ExperimentOptions opt;
    opt.scale = hdr.scale;
    opt.seed = hdr.seed;
    const driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, hdr.app);

    const driver::RunResult live = driver::runOne(hdr.app, cfg, opt);
    const driver::RunResult replay =
        driver::runOne(trace_name, cfg, opt);
    EXPECT_EQ(driver::resultFingerprint(live),
              driver::resultFingerprint(replay));
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCorpus,
                         ::testing::Values("mst_tiny.ulmttrace",
                                           "tree_tiny.ulmttrace",
                                           "cg_tiny.ulmttrace"),
                         [](const auto &info) {
                             std::string n(info.param);
                             for (char &c : n)
                                 if (c == '.')
                                     c = '_';
                             return n;
                         });

TEST(TraceTableRows, TraceSchemeResolvesThroughProvenance)
{
    const std::string path = tmpPath("rows.ulmttrace");
    workloads::WorkloadParams wp;
    wp.scale = 0.02;
    recordWorkload("MST", wp, path);
    EXPECT_EQ(workloads::tableNumRows("trace:" + path),
              workloads::tableNumRows("MST"));
}

} // namespace
