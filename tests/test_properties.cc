/**
 * @file
 * Property-style parameterized sweeps over the correlation-table
 * invariants, across table geometries and algorithm parameters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/base_chain.hh"
#include "core/replicated.hh"
#include "sim/random.hh"

namespace {

core::NullCostTracker nc;

/** (numRows, assoc, numSucc, numLevels) */
using Params =
    std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
               std::uint32_t>;

core::CorrelationParams
make(const Params &p)
{
    core::CorrelationParams cp;
    cp.numRows = std::get<0>(p);
    cp.assoc = std::get<1>(p);
    cp.numSucc = std::get<2>(p);
    cp.numLevels = std::get<3>(p);
    return cp;
}

std::vector<sim::Addr>
randomStream(std::size_t n, std::size_t distinct, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<sim::Addr> s(n);
    for (auto &a : s)
        a = rng.below(distinct) * 64;
    return s;
}

class ReplProperties : public ::testing::TestWithParam<Params>
{
};

TEST_P(ReplProperties, PrefetchCountBounded)
{
    const core::CorrelationParams cp = make(GetParam());
    core::ReplicatedPrefetcher repl(cp);
    std::vector<sim::Addr> out;
    for (sim::Addr m : randomStream(3000, 512, 1)) {
        out.clear();
        repl.prefetchStep(m, out, nc);
        EXPECT_LE(out.size(),
                  static_cast<std::size_t>(cp.numSucc) * cp.numLevels);
        repl.learnStep(m, nc);
    }
}

TEST_P(ReplProperties, PredictionsMatchDeclaredShape)
{
    const core::CorrelationParams cp = make(GetParam());
    core::ReplicatedPrefetcher repl(cp);
    core::LevelPredictions preds;
    for (sim::Addr m : randomStream(2000, 256, 2)) {
        repl.predict(m, preds);
        ASSERT_EQ(preds.size(), cp.numLevels);
        for (const auto &level : preds)
            ASSERT_LE(level.size(), cp.numSucc);
        repl.learnStep(m, nc);
    }
}

TEST_P(ReplProperties, TrueMruSuccessorAtEveryLevel)
{
    // The defining property of Replicated (Table 1): after observing a
    // deterministic sequence, the level-k MRU entry of row X is the
    // k-th miss after X's most recent occurrence.
    const core::CorrelationParams cp = make(GetParam());
    core::ReplicatedPrefetcher repl(cp);
    const auto stream = randomStream(4000, 64, 3);
    for (sim::Addr m : stream)
        repl.learnStep(m, nc);

    // Find the LAST occurrence of each address with numLevels
    // followers available, and check the MRU entries.
    for (std::size_t i = stream.size() - cp.numLevels - 1;
         i > stream.size() - 200; --i) {
        const sim::Addr x = stream[i];
        // Only the final occurrence of x reflects the MRU state.
        bool later = false;
        for (std::size_t j = i + 1; j < stream.size(); ++j) {
            if (stream[j] == x)
                later = true;
        }
        if (later)
            continue;
        core::LevelPredictions preds;
        repl.predict(x, preds);
        for (std::uint32_t lvl = 0; lvl < cp.numLevels; ++lvl) {
            if (preds[lvl].empty())
                continue;  // row may have been displaced
            EXPECT_EQ(preds[lvl].front(), stream[i + 1 + lvl])
                << "level " << lvl + 1;
        }
    }
}

TEST_P(ReplProperties, InsertionsNeverExceedObservations)
{
    const core::CorrelationParams cp = make(GetParam());
    core::ReplicatedPrefetcher repl(cp);
    const auto stream = randomStream(3000, 1024, 4);
    for (sim::Addr m : stream)
        repl.learnStep(m, nc);
    EXPECT_LE(repl.insertions(), stream.size());
    EXPECT_LE(repl.replacements(), repl.insertions());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReplProperties,
    ::testing::Values(Params{256, 2, 2, 3}, Params{256, 4, 4, 3},
                      Params{1024, 2, 2, 1}, Params{1024, 2, 1, 4},
                      Params{4096, 4, 2, 2}, Params{512, 8, 3, 5}));

class PairProperties : public ::testing::TestWithParam<Params>
{
};

TEST_P(PairProperties, BasePrefetchesAtMostNumSucc)
{
    const core::CorrelationParams cp = make(GetParam());
    core::BasePrefetcher base(cp);
    std::vector<sim::Addr> out;
    for (sim::Addr m : randomStream(3000, 512, 5)) {
        out.clear();
        base.prefetchStep(m, out, nc);
        EXPECT_LE(out.size(), cp.numSucc);
        base.learnStep(m, nc);
    }
}

TEST_P(PairProperties, BaseLevelOneIsImmediateSuccessorSet)
{
    const core::CorrelationParams cp = make(GetParam());
    core::BasePrefetcher base(cp);
    const auto stream = randomStream(4000, 32, 6);
    for (sim::Addr m : stream)
        base.learnStep(m, nc);
    // For the last 100 transitions x -> y, y must be in x's successor
    // set unless more than numSucc distinct successors followed x
    // afterwards (LRU displacement) or the row itself was displaced.
    for (std::size_t i = stream.size() - 100; i + 1 < stream.size();
         ++i) {
        const sim::Addr x = stream[i];
        const sim::Addr y = stream[i + 1];
        // Count distinct successors of x observed after position i.
        std::vector<sim::Addr> later;
        for (std::size_t j = i + 1; j + 1 < stream.size(); ++j) {
            if (stream[j] == x)
                later.push_back(stream[j + 1]);
        }
        std::sort(later.begin(), later.end());
        later.erase(std::unique(later.begin(), later.end()),
                    later.end());
        if (later.size() >= cp.numSucc)
            continue;
        core::LevelPredictions preds;
        base.predict(x, preds);
        if (preds[0].empty())
            continue;  // row displaced by table conflicts
        EXPECT_NE(std::find(preds[0].begin(), preds[0].end(), y),
                  preds[0].end());
    }
}

TEST_P(PairProperties, ChainNeverPrefetchesBeyondLevels)
{
    const core::CorrelationParams cp = make(GetParam());
    core::ChainPrefetcher chain(cp);
    std::vector<sim::Addr> out;
    for (sim::Addr m : randomStream(3000, 128, 7)) {
        out.clear();
        chain.prefetchStep(m, out, nc);
        EXPECT_LE(out.size(),
                  static_cast<std::size_t>(cp.numSucc) * cp.numLevels);
        chain.learnStep(m, nc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PairProperties,
    ::testing::Values(Params{256, 2, 2, 3}, Params{1024, 4, 4, 2},
                      Params{512, 2, 1, 3}, Params{2048, 8, 6, 4}));

} // namespace
