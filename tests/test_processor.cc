/**
 * @file
 * Tests for the main-processor window model: busy accounting,
 * dependence serialization, load-window and ROB limits, stall
 * attribution, and the end-of-trace drain.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/main_processor.hh"

namespace {

/** A trace source fed from a vector. */
class VectorTrace : public cpu::TraceSource
{
  public:
    explicit VectorTrace(std::vector<cpu::TraceRecord> recs)
        : recs_(std::move(recs))
    {
    }

    bool
    next(cpu::TraceRecord &rec) override
    {
        if (pos_ >= recs_.size())
            return false;
        rec = recs_[pos_++];
        return true;
    }

  private:
    std::vector<cpu::TraceRecord> recs_;
    std::size_t pos_ = 0;
};

cpu::TraceRecord
load(sim::Addr addr, std::uint32_t ops = 0, bool dep = false)
{
    return cpu::TraceRecord{ops, addr, false, dep};
}

cpu::TraceRecord
compute(std::uint32_t ops)
{
    return cpu::TraceRecord{ops, sim::invalidAddr, false, false};
}

struct Harness
{
    explicit Harness(std::vector<cpu::TraceRecord> recs)
        : trace(std::move(recs)), ms(eq, tp),
          hier(eq, tp, ms, false), proc(eq, tp, hier, trace)
    {
        ms.setPushCallback([this](sim::Cycle when, sim::Addr line, unsigned) {
            hier.acceptPush(when, line);
        });
    }

    const cpu::ProcessorStats &
    run()
    {
        proc.start();
        EXPECT_TRUE(eq.run());
        EXPECT_TRUE(proc.finished());
        return proc.stats();
    }

    sim::EventQueue eq;
    mem::TimingParams tp;
    VectorTrace trace;
    mem::MemorySystem ms;
    cpu::Hierarchy hier;
    cpu::MainProcessor proc;
};

TEST(Processor, PureComputeTime)
{
    // 10 records of 60 ops at 6-wide issue: 10 cycles each.
    std::vector<cpu::TraceRecord> recs(10, compute(60));
    Harness h(std::move(recs));
    const auto &s = h.run();
    EXPECT_EQ(s.busyCycles, 100u);
    EXPECT_EQ(s.totalCycles, 100u);
    EXPECT_EQ(s.uptoL2Stall, 0u);
    EXPECT_EQ(s.beyondL2Stall, 0u);
    EXPECT_EQ(s.records, 10u);
}

TEST(Processor, MinimumOneCyclePerRecord)
{
    std::vector<cpu::TraceRecord> recs(5, compute(0));
    Harness h(std::move(recs));
    EXPECT_EQ(h.run().busyCycles, 5u);
}

TEST(Processor, SingleMissDrainsAtFullLatency)
{
    Harness h({load(0x1000)});
    const auto &s = h.run();
    // Issue at cycle 1 (one busy slot), complete 243 later.
    EXPECT_EQ(s.totalCycles, 1u + h.tp.memRowMissRt());
    EXPECT_EQ(s.beyondL2Stall + s.busyCycles, s.totalCycles);
    EXPECT_GT(s.stallDrain, 0u);
}

TEST(Processor, DependentMissesSerialize)
{
    // Two dependent misses: the second waits for the first.
    Harness h({load(0x100000, 0, false), load(0x200000, 0, true),
               load(0x300000, 0, true)});
    const auto &s = h.run();
    // Roughly 3 serialized round trips.
    EXPECT_GT(s.totalCycles, 3 * h.tp.memRowHitRt());
    EXPECT_GT(s.stallDependence, h.tp.memRowHitRt());
}

TEST(Processor, IndependentMissesOverlap)
{
    std::vector<cpu::TraceRecord> recs;
    for (int i = 0; i < 8; ++i)
        recs.push_back(load(0x100000 + i * 4096));
    Harness h(std::move(recs));
    const auto &s = h.run();
    // All eight fit in the load window: far less than 8 round trips.
    EXPECT_LT(s.totalCycles, 3 * h.tp.memRowMissRt());
}

TEST(Processor, LoadWindowLimitsOverlap)
{
    // More outstanding misses than maxPendingLoads: the window stalls.
    std::vector<cpu::TraceRecord> recs;
    for (int i = 0; i < 24; ++i)
        recs.push_back(load(0x100000 + i * 4096));
    Harness h(std::move(recs));
    const auto &s = h.run();
    EXPECT_GT(s.stallLoadWindow, 0u);
}

TEST(Processor, RobLimitsRunahead)
{
    // A miss followed by a long run of compute: issue must stop when
    // the ROB fills behind the incomplete load.
    std::vector<cpu::TraceRecord> recs{load(0x100000)};
    for (int i = 0; i < 100; ++i)
        recs.push_back(load(0x100000 + (i % 2) * 8, 60));  // L1 traffic
    Harness h(std::move(recs));
    const auto &s = h.run();
    // With robSize=128 and ~61 ops per record, issue stops ~2 records
    // after the miss; most of the miss latency is exposed.
    EXPECT_GT(s.beyondL2Stall, h.tp.memRowMissRt() / 2);
}

TEST(Processor, StallAttributionUptoVsBeyond)
{
    // First populate the L2 (memory stall), then thrash only L1 -> L2
    // hits (upto stall via dependence).
    std::vector<cpu::TraceRecord> recs;
    recs.push_back(load(0x1000));
    recs.push_back(load(0x1000 + 8 * 1024, 0, true));
    recs.push_back(load(0x1000, 0, true));           // L1 evicted? no:
    recs.push_back(load(0x1000 + 16 * 1024, 0, true));
    Harness h(std::move(recs));
    const auto &s = h.run();
    EXPECT_GT(s.beyondL2Stall, 0u);
}

TEST(Processor, OpsAccounting)
{
    Harness h({compute(12), load(0x40, 6)});
    const auto &s = h.run();
    EXPECT_EQ(s.ops, 12u + 6u + 1u);  // the reference costs one op
}

TEST(Processor, DeterministicAcrossRuns)
{
    auto make = [] {
        std::vector<cpu::TraceRecord> recs;
        for (int i = 0; i < 200; ++i)
            recs.push_back(load(0x100000 + (i * 7919) % 65536,
                                i % 5, i % 3 == 0));
        return recs;
    };
    Harness a(make()), b(make());
    EXPECT_EQ(a.run().totalCycles, b.run().totalCycles);
}

} // namespace
