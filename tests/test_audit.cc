/**
 * @file
 * Tests of the prefetch lifecycle audit layer (DESIGN.md section 12):
 * passivity (bit-identical fingerprints with auditing on or off, single
 * and multicore), the taxonomy identities against the pre-existing
 * hierarchy counters, lifecycle conservation, the lead-time histogram,
 * the blocked_by interference matrix, the ULMT_AUDIT environment
 * override, and the composed observability run (time series + trace
 * events + audit at --cores=4).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/system.hh"
#include "mem/prefetch_audit.hh"
#include "sim/trace_event.hh"
#include "workloads/workload.hh"

namespace {

driver::RunResult
runMcf(bool audit, unsigned cores = 1,
       core::UlmtMode mode = core::UlmtMode::Shared,
       sim::Cycle metrics_interval = 0,
       sim::TraceEventBuffer *trace = nullptr)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.05;
    driver::SystemConfig cfg =
        driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl, "Mcf");
    cfg.audit = audit;
    cfg.cores = cores;
    cfg.ulmtMode = mode;
    cfg.metricsInterval = metrics_interval;
    auto ws = driver::makeCoreWorkloads("Mcf", opt.seed, opt.scale,
                                        cores);
    driver::System sys(cfg, std::move(ws), "Mcf");
    if (trace)
        sys.setTraceEvents(trace);
    return sys.run();
}

// ---------------------------------------------------------------------
// Passivity: the audit layer must never perturb the simulation
// ---------------------------------------------------------------------

TEST(AuditPassivityTest, SingleCoreFingerprintIdentical)
{
    const driver::RunResult off = runMcf(false);
    const driver::RunResult on = runMcf(true);
    EXPECT_FALSE(off.audit.enabled);
    EXPECT_TRUE(on.audit.enabled);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(driver::resultFingerprint(off),
              driver::resultFingerprint(on));
}

TEST(AuditPassivityTest, MulticoreShardedFingerprintIdentical)
{
    const driver::RunResult off =
        runMcf(false, 4, core::UlmtMode::Sharded);
    const driver::RunResult on =
        runMcf(true, 4, core::UlmtMode::Sharded);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(driver::resultFingerprint(off),
              driver::resultFingerprint(on));
    ASSERT_EQ(on.audit.cores.size(), 4u);
}

/** Satellite 4: metrics sampling + trace events + audit composed in
 *  one multicore run must still match the everything-off run. */
TEST(AuditPassivityTest, ComposedObservabilityMulticore)
{
    const driver::RunResult plain =
        runMcf(false, 4, core::UlmtMode::PerCore);
    sim::TraceEventBuffer buf;
    const driver::RunResult composed =
        runMcf(true, 4, core::UlmtMode::PerCore, 16384, &buf);
    EXPECT_EQ(plain.cycles, composed.cycles);
    EXPECT_EQ(driver::resultFingerprint(plain),
              driver::resultFingerprint(composed));
    EXPECT_TRUE(composed.audit.enabled);
    EXPECT_FALSE(composed.metrics.empty());
    EXPECT_GT(buf.size(), 0u);
    // The audit channels rode along in the time series.
    bool has_cov = false;
    for (const std::string &ch : composed.metrics.channels)
        has_cov = has_cov || ch == "audit.coverage";
    EXPECT_TRUE(has_cov);
}

TEST(AuditPassivityTest, EnvOverrideDisablesAndEnables)
{
    ::setenv("ULMT_AUDIT", "0", 1);
    const driver::RunResult off = runMcf(true);
    ::setenv("ULMT_AUDIT", "1", 1);
    const driver::RunResult on = runMcf(false);
    ::unsetenv("ULMT_AUDIT");
    EXPECT_FALSE(off.audit.enabled);
    EXPECT_TRUE(on.audit.enabled);
    EXPECT_EQ(driver::resultFingerprint(off),
              driver::resultFingerprint(on));
}

// ---------------------------------------------------------------------
// Taxonomy: the lifecycle outcomes are identities over the legacy
// counters (satellite 3's reconciliation with fig9_effectiveness)
// ---------------------------------------------------------------------

TEST(AuditTaxonomyTest, OutcomesMatchHierarchyCounters)
{
    const driver::RunResult r = runMcf(true);
    ASSERT_TRUE(r.audit.enabled);
    ASSERT_EQ(r.audit.cores.size(), 1u);
    const mem::AuditOutcomeCounts &c = r.audit.cores[0].push;

    EXPECT_GT(c.issued, 0u);
    EXPECT_EQ(c.issued, r.memsys.ulmtPrefetchesIssued);
    EXPECT_EQ(c.usefulTimely, r.hier.ulmtHits);
    EXPECT_EQ(c.usefulLate, r.hier.ulmtDelayedHits);
    EXPECT_EQ(c.evictedUnused, r.hier.ulmtReplaced);
    EXPECT_EQ(c.redundant, r.hier.pushRedundant());

    // Legacy Figure 9 coverage (Hits + DelayedHits) is exactly the
    // taxonomy's useful_timely + useful_late.
    EXPECT_EQ(r.hier.ulmtHits + r.hier.ulmtDelayedHits,
              c.usefulTimely + c.usefulLate);

    // The CPU stream prefetcher's lifecycle folds in from the
    // hierarchy counters.
    const mem::AuditCoreReport &cr = r.audit.cores[0];
    EXPECT_EQ(cr.cpuPfIssued, r.hier.cpuPfIssued);
    EXPECT_EQ(cr.cpuPfToMemory, r.hier.cpuPfToMemory);
    EXPECT_EQ(cr.cpuPfUsefulTimely, r.hier.cpuPfTimely);
    EXPECT_EQ(cr.cpuPfUsefulLate,
              r.hier.cpuPfUseful - r.hier.cpuPfTimely);
    EXPECT_EQ(cr.cpuPfReplaced, r.hier.cpuPfReplaced);
}

TEST(AuditTaxonomyTest, LifecycleConservation)
{
    const driver::RunResult r = runMcf(true);
    std::uint64_t issued = 0, closed = 0;
    for (const auto &cr : r.audit.cores) {
        issued += cr.push.issued;
        closed += cr.push.usefulTimely + cr.push.usefulLate +
                  cr.push.evictedUnused + cr.push.redundant;
    }
    // Every issued push either reached a terminal outcome or is still
    // open (in flight to the L2, or installed and never referenced).
    EXPECT_EQ(issued, closed + r.audit.openInflight +
                          r.audit.openInstalled);
}

TEST(AuditTaxonomyTest, EngineCountsSumToCoreCounts)
{
    const driver::RunResult r =
        runMcf(true, 4, core::UlmtMode::Sharded);
    std::uint64_t core_issued = 0, engine_issued = 0;
    for (const auto &cr : r.audit.cores)
        core_issued += cr.push.issued;
    for (const auto &er : r.audit.engines)
        engine_issued += er.push.issued;
    EXPECT_GT(core_issued, 0u);
    EXPECT_EQ(core_issued, engine_issued);
}

TEST(AuditTaxonomyTest, LeadTimeHistogramCountsUsefulTimely)
{
    const driver::RunResult r = runMcf(true);
    const mem::AuditCoreReport &cr = r.audit.cores[0];
    const std::uint64_t in_hist =
        std::accumulate(cr.leadCounts.begin(), cr.leadCounts.end(),
                        std::uint64_t(0)) +
        cr.leadBelow;
    EXPECT_EQ(in_hist, cr.push.usefulTimely);
    EXPECT_EQ(cr.lateCount, cr.push.usefulLate);
    ASSERT_FALSE(cr.leadEdges.empty());
    EXPECT_EQ(cr.leadEdges.size(), cr.leadCounts.size());
}

TEST(AuditTaxonomyTest, RatiosAreConsistent)
{
    const driver::RunResult r = runMcf(true);
    const mem::AuditCoreReport &cr = r.audit.cores[0];
    const mem::AuditOutcomeCounts &c = cr.push;
    EXPECT_NEAR(cr.accuracy,
                double(c.useful()) / double(c.issued), 1e-12);
    EXPECT_NEAR(cr.timeliness,
                double(c.usefulTimely) / double(c.useful()), 1e-12);
    EXPECT_NEAR(cr.coverage,
                c.coverage(r.hier.nonPrefMisses), 1e-12);
    EXPECT_GT(cr.coverage, 0.0);
    EXPECT_LE(cr.coverage, 1.0);
}

// ---------------------------------------------------------------------
// Interference attribution
// ---------------------------------------------------------------------

TEST(AuditInterferenceTest, BlockedByMatrixShape)
{
    const driver::RunResult r =
        runMcf(true, 4, core::UlmtMode::Sharded);
    ASSERT_EQ(r.audit.cores.size(), 4u);
    std::uint64_t blocked = 0;
    for (const auto &cr : r.audit.cores) {
        // One column per core plus the memory-thread pseudo-tenant.
        ASSERT_EQ(cr.blockedBy.size(), 5u);
        for (std::uint64_t v : cr.blockedBy)
            blocked += v;
    }
    // A 4-core machine sharing one bus must exhibit some contention.
    EXPECT_GT(blocked, 0u);
}

TEST(AuditInterferenceTest, OccupancySplitsArePopulated)
{
    const driver::RunResult r = runMcf(true);
    const mem::AuditCoreReport &cr = r.audit.cores[0];
    EXPECT_GT(cr.busDemandCycles, 0u);
    EXPECT_GT(cr.busPrefetchCycles, 0u);  // pushes + cpu-pf traffic
    EXPECT_GT(cr.dramDemandCycles, 0u);
    EXPECT_GT(cr.dramPrefetchCycles, 0u);
    // The memory thread's table walk traffic has its own footprint.
    EXPECT_GT(r.audit.tableDramCycles, 0u);
}

// ---------------------------------------------------------------------
// Stat registry surface
// ---------------------------------------------------------------------

TEST(AuditStatsTest, RegistryExposesAuditNames)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.02;
    driver::SystemConfig cfg =
        driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl,
                                      "Mcf");
    cfg.audit = true;
    cfg.cores = 2;
    auto ws = driver::makeCoreWorkloads("Mcf", opt.seed, opt.scale, 2);
    driver::System sys(cfg, std::move(ws), "Mcf");
    sys.run();
    const sim::StatRegistry &reg = sys.statRegistry();
    for (const char *name :
         {"audit.core.0.issued", "audit.core.1.issued",
          "audit.core.0.useful_timely", "audit.core.0.coverage",
          "audit.core.0.lead_time_cycles",
          "audit.core.0.bus.demand_cycles",
          "audit.engine.0.issued", "audit.ulmt.table_dram_cycles",
          "audit.blocked_cycles_total",
          "memsys.core.0.blocked_by.1",
          "memsys.core.1.blocked_by.ulmt"})
        EXPECT_TRUE(reg.has(name)) << name;
}

TEST(AuditStatsTest, DisabledLeavesNoAuditNames)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.02;
    driver::SystemConfig cfg =
        driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl,
                                      "Mcf");
    cfg.audit = false;
    workloads::WorkloadParams wp;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("Mcf", wp);
    driver::System sys(cfg, *wl);
    sys.run();
    EXPECT_FALSE(sys.statRegistry().has("audit.core.0.issued"));
    EXPECT_FALSE(
        sys.statRegistry().has("memsys.core.0.blocked_by.0"));
}

// ---------------------------------------------------------------------
// Trace annotation
// ---------------------------------------------------------------------

TEST(AuditTraceTest, OutcomeInstantsAppearInTrace)
{
    sim::TraceEventBuffer buf;
    runMcf(true, 1, core::UlmtMode::Shared, 0, &buf);
    bool saw_outcome = false;
    for (const sim::TraceEvent &ev : buf.events()) {
        if (ev.name.rfind("pf_outcome_", 0) == 0) {
            saw_outcome = true;
            break;
        }
    }
    EXPECT_TRUE(saw_outcome);
}

} // namespace
