/**
 * @file
 * Tests for the cache hierarchy: hit/miss latencies, MSHR behaviour,
 * the four push-prefetch drop rules of Section 2.1, delayed hits, and
 * the Figure 9 classification counters.
 */

#include <gtest/gtest.h>

#include "cpu/hierarchy.hh"

namespace {

struct Fixture : public ::testing::Test
{
    Fixture() : ms(eq, tp), hier(eq, tp, ms, /*stream_pf=*/false)
    {
        ms.setPushCallback([this](sim::Cycle when, sim::Addr line, unsigned) {
            hier.acceptPush(when, line);
        });
    }

    /** Run the event queue so background completions land. */
    void drain() { eq.run(); }

    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms;
    cpu::Hierarchy hier;
};

TEST_F(Fixture, L1HitLatency)
{
    hier.access(0, 0x1000, false);          // cold miss
    drain();
    const sim::Cycle t = eq.now() + 100;
    auto out = hier.access(t, 0x1010, false);  // same L1 line
    EXPECT_EQ(out.complete, t + tp.l1HitRt);
    EXPECT_EQ(out.served, sim::ServedBy::L1);
}

TEST_F(Fixture, L2HitLatency)
{
    hier.access(0, 0x1000, false);
    drain();
    const sim::Cycle t = eq.now() + 100;
    // Different L1 line, same L2 line (L1 32 B, L2 64 B).
    auto out = hier.access(t, 0x1020, false);
    EXPECT_EQ(out.complete, t + tp.l2HitRt);
    EXPECT_EQ(out.served, sim::ServedBy::L2);
}

TEST_F(Fixture, MemoryMissLatency)
{
    auto out = hier.access(0, 0x1000, false);
    EXPECT_EQ(out.complete, tp.memRowMissRt());
    EXPECT_EQ(out.served, sim::ServedBy::Memory);
    EXPECT_EQ(hier.stats().nonPrefMisses, 1u);
}

TEST_F(Fixture, MshrMergeOnPendingLine)
{
    auto first = hier.access(0, 0x1000, false);
    // Second access to the same L2 line while in flight merges.
    auto second = hier.access(5, 0x1040 - 0x20, false);
    EXPECT_EQ(second.complete, first.complete);
    EXPECT_EQ(hier.stats().l2MshrMerges, 1u);
    // Only one memory fetch happened.
    EXPECT_EQ(ms.stats().demandFetches, 1u);
}

TEST_F(Fixture, PushInstallsAndDemandHits)
{
    hier.acceptPush(100, 0x2000);
    EXPECT_EQ(hier.stats().pushInstalled, 1u);
    auto out = hier.access(200, 0x2000, false);
    EXPECT_EQ(out.complete, 200 + tp.l2HitRt);
    EXPECT_EQ(hier.stats().ulmtHits, 1u);
    // The flag is consumed: a second access is a plain L2 hit.
    hier.access(300, 0x2020, false);
    EXPECT_EQ(hier.stats().ulmtHits, 1u);
}

TEST_F(Fixture, PushDropRulePresent)
{
    hier.access(0, 0x2000, false);
    drain();
    hier.acceptPush(eq.now(), 0x2000);
    EXPECT_EQ(hier.stats().pushRedundantPresent, 1u);
    EXPECT_EQ(hier.stats().pushInstalled, 0u);
}

TEST_F(Fixture, PushDropRuleWritebackQueue)
{
    // Dirty an L1 line, push it down to the L2 (making the L2 copy
    // dirty), then force the L2 eviction: the line enters the write-
    // back queue and a push for it must be dropped.
    hier.access(0, 0x2000, true);
    drain();
    // L1: 2-way, 256 sets, 32 B lines -> same-set stride 8 KB.
    hier.access(eq.now(), 0x2000 + 8 * 1024, false);
    drain();
    hier.access(eq.now(), 0x2000 + 16 * 1024, false);
    drain();
    const mem::CacheLine *l2line = hier.l2().find(0x2000);
    ASSERT_NE(l2line, nullptr);
    ASSERT_TRUE(l2line->dirty);
    // L2: 4-way, 2048 sets, 64 B lines -> same-set stride 128 KB.
    const sim::Addr stride = 64 * 2048;
    const sim::Cycle t = eq.now();
    for (int i = 1; i <= 4; ++i)
        hier.access(t, 0x2000 + i * stride, false);
    ASSERT_EQ(hier.l2().find(0x2000), nullptr);  // evicted
    // The write-back is still draining when the push arrives.
    hier.acceptPush(t + 1, 0x2000);
    EXPECT_EQ(hier.stats().pushRedundantWb, 1u);
}

TEST_F(Fixture, PushDropRuleMshrsFull)
{
    // Fill all MSHRs with distinct outstanding misses.
    for (std::uint32_t i = 0; i < tp.l2Mshrs; ++i)
        hier.access(0, 0x100000 + i * 64, false);
    hier.acceptPush(1, 0x2000);
    EXPECT_EQ(hier.stats().pushDroppedMshrFull, 1u);
    // Once the fills complete, pushes are accepted again.
    drain();
    hier.acceptPush(eq.now() + 1, 0x2000);
    EXPECT_EQ(hier.stats().pushInstalled, 1u);
}

TEST_F(Fixture, PushDropRuleSetPending)
{
    // Fill one L2 set with 4 in-flight lines.
    const sim::Addr stride = 64 * 2048;
    for (int i = 0; i < 4; ++i)
        hier.access(0, 0x4000 + i * stride, false);
    hier.acceptPush(5, 0x4000 + 4 * stride);
    EXPECT_EQ(hier.stats().pushDroppedSetPending, 1u);
}

TEST_F(Fixture, DelayedHitClaimsInflightPrefetch)
{
    ASSERT_TRUE(ms.ulmtPrefetch(0, 0x3000));
    const sim::Cycle arrival = ms.inflightPrefetchArrival(0x3000);
    ASSERT_NE(arrival, sim::neverCycle);
    // Demand miss while the prefetch is in flight.
    auto out = hier.access(10, 0x3000, false);
    EXPECT_EQ(out.complete, std::max<sim::Cycle>(10 + tp.l2HitRt,
                                                 arrival));
    EXPECT_EQ(hier.stats().ulmtDelayedHits, 1u);
    EXPECT_EQ(hier.stats().nonPrefMisses, 0u);
    EXPECT_GT(hier.stats().delayedHitSavedCycles, 0u);
    // No extra demand fetch went to memory.
    EXPECT_EQ(ms.stats().demandFetches, 0u);
    // The push arrival must not double-install or count as redundant.
    drain();
    EXPECT_EQ(hier.stats().pushInstalled, 0u);
    EXPECT_EQ(hier.stats().pushRedundant(), 0u);
}

TEST_F(Fixture, ReplacedCounterTracksUnusedPushes)
{
    hier.acceptPush(0, 0x5000);
    // Evict it with demand traffic to the same set before any use.
    const sim::Addr stride = 64 * 2048;
    for (int i = 1; i <= 4; ++i)
        hier.access(eq.now(), 0x5000 + i * stride, false);
    drain();
    EXPECT_EQ(hier.stats().ulmtReplaced, 1u);
}

TEST_F(Fixture, MissGapHistogramFills)
{
    hier.access(0, 0x6000, false);
    drain();
    hier.access(eq.now() + 250, 0x7000, false);
    drain();
    hier.access(eq.now() + 300, 0x8000, false);
    EXPECT_EQ(hier.missGapHistogram().total(), 2u);
}

TEST_F(Fixture, WriteAllocatesAndDirties)
{
    hier.access(0, 0x9000, true);
    drain();
    const mem::CacheLine *l1 = hier.l1().find(0x9000);
    ASSERT_NE(l1, nullptr);
    EXPECT_TRUE(l1->dirty);
}

TEST_F(Fixture, DemandMissObserverHook)
{
    std::vector<sim::Addr> seen;
    hier.onDemandL2Miss = [&](sim::Cycle, sim::Addr line) {
        seen.push_back(line);
    };
    hier.access(0, 0xA000, false);
    hier.access(1, 0xA010, false);  // L1 miss, pending L2 merge: miss?
    ASSERT_GE(seen.size(), 1u);
    EXPECT_EQ(seen[0], 0xA000u);
}

TEST(HierarchyStreamPf, StreamPrefetcherCoversSequentialMisses)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    cpu::Hierarchy hier(eq, tp, ms, /*stream_pf=*/true);
    ms.setPushCallback([&](sim::Cycle when, sim::Addr line, unsigned) {
        hier.acceptPush(when, line);
    });

    // Walk sequentially; after detection the prefetcher should turn
    // most L2 misses into prefetch hits.
    sim::Cycle t = 0;
    for (int i = 0; i < 512; ++i) {
        hier.access(t, 0x100000 + i * 32, false);
        t += 60;
        eq.run();
    }
    EXPECT_GT(hier.stats().cpuPfIssued, 100u);
    EXPECT_GT(hier.stats().cpuPfUseful, 100u);
    // Sequential misses mostly intercepted.
    EXPECT_LT(hier.stats().nonPrefMisses, 200u);
}

} // namespace
