/**
 * @file
 * Tests for the software sequential prefetcher (Seq1/Seq4), the
 * composite algorithm (union prediction, short-circuit mode), and the
 * adaptive algorithm's mode selection.
 */

#include <gtest/gtest.h>

#include "core/adaptive.hh"
#include "core/composite.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "sim/random.hh"

namespace {

core::NullCostTracker nc;

core::SeqParams
seqParams(std::uint32_t streams)
{
    core::SeqParams p;
    p.numSeq = streams;
    p.numPref = 6;
    p.lineBytes = 64;
    return p;
}

void
observe(core::CorrelationPrefetcher &algo, sim::Addr miss)
{
    std::vector<sim::Addr> discard;
    algo.prefetchStep(miss, discard, nc);
    algo.learnStep(miss, nc);
}

TEST(SeqPrefetcher, DetectsAndRunsAhead)
{
    core::SeqPrefetcher seq(seqParams(1));
    std::vector<sim::Addr> out;
    observe(seq, 0x1000);
    observe(seq, 0x1040);
    // Third consecutive line: detection + NumPref lines ahead.
    seq.prefetchStep(0x1080, out, nc);
    seq.learnStep(0x1080, nc);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out.front(), 0x10c0u);
    EXPECT_EQ(out.back(), 0x1200u);
    EXPECT_EQ(seq.streamsDetected(), 1u);
}

TEST(SeqPrefetcher, PredictsFromEveryActiveStream)
{
    core::SeqPrefetcher seq(seqParams(4));
    // Establish two streams.
    for (int i = 0; i < 4; ++i) {
        observe(seq, 0x10000 + i * 64);
        observe(seq, 0x80000 + i * 64);
    }
    core::LevelPredictions preds;
    // Predict from a miss on the first stream: level-1 must contain
    // the next line of BOTH streams (the paper's permissive metric).
    seq.predict(0x10000 + 4 * 64, preds);
    ASSERT_FALSE(preds.empty());
    const auto &lvl1 = preds[0];
    EXPECT_NE(std::find(lvl1.begin(), lvl1.end(), 0x10000 + 5 * 64),
              lvl1.end());
    EXPECT_NE(std::find(lvl1.begin(), lvl1.end(), 0x80000 + 4 * 64),
              lvl1.end());
}

TEST(SeqPrefetcher, LookaheadKnob)
{
    core::SeqParams p = seqParams(1);
    p.lookaheadLines = 12;
    core::SeqPrefetcher seq(p);
    std::vector<sim::Addr> out;
    observe(seq, 0x1000);
    observe(seq, 0x1040);
    seq.prefetchStep(0x1080, out, nc);
    EXPECT_EQ(out.size(), 12u);
}

TEST(Composite, RunsBothAndMergesPredictions)
{
    std::vector<std::unique_ptr<core::CorrelationPrefetcher>> parts;
    parts.push_back(
        std::make_unique<core::SeqPrefetcher>(seqParams(4)));
    parts.push_back(std::make_unique<core::ReplicatedPrefetcher>(
        core::chainReplDefaults(1024)));
    core::CompositePrefetcher comp(std::move(parts));
    EXPECT_EQ(comp.name(), "Seq4+Repl");
    EXPECT_EQ(comp.levels(), 6u);  // max of parts

    // Irregular repeating pattern: only Repl learns it.
    for (int rep = 0; rep < 3; ++rep) {
        observe(comp, 0x9000);
        observe(comp, 0x3000);
        observe(comp, 0x7000);
    }
    core::LevelPredictions preds;
    comp.predict(0x9000, preds);
    EXPECT_NE(std::find(preds[0].begin(), preds[0].end(), 0x3000),
              preds[0].end());
}

TEST(Composite, ShortCircuitSkipsBackOnStreamHit)
{
    std::vector<std::unique_ptr<core::CorrelationPrefetcher>> parts;
    auto seq = std::make_unique<core::SeqPrefetcher>(seqParams(1));
    auto repl = std::make_unique<core::ReplicatedPrefetcher>(
        core::chainReplDefaults(1024));
    core::ReplicatedPrefetcher *repl_raw = repl.get();
    parts.push_back(std::move(seq));
    parts.push_back(std::move(repl));
    core::CompositePrefetcher comp(std::move(parts),
                                   /*short_circuit=*/true);

    // Sequential misses: the front component owns them, so the table
    // never learns them (insertions stay at the detection phase).
    for (int i = 0; i < 32; ++i)
        observe(comp, 0x40000 + i * 64);
    // The first two misses (pre-detection) fall through to Repl; once
    // the stream is live, Repl stops learning.
    EXPECT_LE(repl_raw->insertions(), 4u);
}

TEST(Adaptive, SwitchesToSeqOnlyOnSequentialPhase)
{
    core::AdaptivePrefetcher adaptive(seqParams(4),
                                      core::chainReplDefaults(4096),
                                      /*epoch_misses=*/256);
    for (int i = 0; i < 1200; ++i)
        observe(adaptive, 0x100000 + i * 64);
    EXPECT_EQ(adaptive.mode(), core::AdaptivePrefetcher::Mode::SeqOnly);
    EXPECT_GE(adaptive.modeSwitches(), 1u);
}

TEST(Adaptive, SwitchesToReplOnlyOnIrregularPhase)
{
    core::AdaptivePrefetcher adaptive(seqParams(4),
                                      core::chainReplDefaults(4096),
                                      /*epoch_misses=*/256);
    sim::Rng rng(7);
    // Irregular repeating cycle of 64 scattered lines.
    std::vector<sim::Addr> cycle;
    for (int i = 0; i < 64; ++i)
        cycle.push_back((rng.below(1 << 16)) * 64);
    for (int rep = 0; rep < 24; ++rep) {
        for (sim::Addr a : cycle)
            observe(adaptive, a);
    }
    EXPECT_EQ(adaptive.mode(),
              core::AdaptivePrefetcher::Mode::ReplOnly);
}

TEST(Adaptive, RecoversWhenPhaseChanges)
{
    core::AdaptivePrefetcher adaptive(seqParams(4),
                                      core::chainReplDefaults(4096),
                                      /*epoch_misses=*/128);
    for (int i = 0; i < 600; ++i)
        observe(adaptive, 0x100000 + i * 64);
    ASSERT_EQ(adaptive.mode(),
              core::AdaptivePrefetcher::Mode::SeqOnly);
    sim::Rng rng(9);
    std::vector<sim::Addr> cycle;
    for (int i = 0; i < 50; ++i)
        cycle.push_back(rng.below(1 << 16) * 64);
    for (int rep = 0; rep < 16; ++rep) {
        for (sim::Addr a : cycle)
            observe(adaptive, a);
    }
    EXPECT_NE(adaptive.mode(),
              core::AdaptivePrefetcher::Mode::SeqOnly);
}

} // namespace
