/**
 * @file
 * Tests for the Figure 5 predictability evaluator on synthetic miss
 * streams with known structure.
 */

#include <gtest/gtest.h>

#include "core/base_chain.hh"
#include "core/predictability.hh"
#include "core/replicated.hh"
#include "core/seq_prefetcher.hh"
#include "sim/random.hh"

namespace {

core::CorrelationParams
bigParams()
{
    core::CorrelationParams p;
    p.numRows = 4096;
    p.assoc = 4;
    p.numSucc = 4;
    p.numLevels = 3;
    return p;
}

std::vector<sim::Addr>
repeatingCycle(std::size_t cycle_len, std::size_t reps,
               std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<sim::Addr> cycle;
    for (std::size_t i = 0; i < cycle_len; ++i)
        cycle.push_back(rng.below(1 << 18) * 64);
    std::vector<sim::Addr> stream;
    for (std::size_t r = 0; r < reps; ++r)
        stream.insert(stream.end(), cycle.begin(), cycle.end());
    return stream;
}

TEST(Predictability, RepeatingIrregularCycleIsFullyPredictable)
{
    const auto stream = repeatingCycle(128, 20, 5);
    core::ReplicatedPrefetcher repl(bigParams());
    const auto res = core::evaluatePredictability(repl, stream, 3);
    // After the first cycle everything repeats: high at all levels.
    EXPECT_GT(res.accuracy[0], 0.9);
    EXPECT_GT(res.accuracy[1], 0.9);
    EXPECT_GT(res.accuracy[2], 0.9);
}

TEST(Predictability, RandomStreamIsUnpredictable)
{
    sim::Rng rng(11);
    std::vector<sim::Addr> stream;
    for (int i = 0; i < 4000; ++i)
        stream.push_back(rng.below(1 << 22) * 64);
    core::ReplicatedPrefetcher repl(bigParams());
    const auto res = core::evaluatePredictability(repl, stream, 3);
    EXPECT_LT(res.accuracy[0], 0.05);
}

TEST(Predictability, SequentialStreamFullyCoveredBySeq)
{
    std::vector<sim::Addr> stream;
    for (int i = 0; i < 2000; ++i)
        stream.push_back(0x100000 + i * 64);
    core::SeqParams p;
    p.numSeq = 1;
    core::SeqPrefetcher seq(p);
    const auto res = core::evaluatePredictability(seq, stream, 3);
    EXPECT_GT(res.accuracy[0], 0.95);
    EXPECT_GT(res.accuracy[2], 0.95);
}

TEST(Predictability, BaseOnlyPredictsLevelOne)
{
    const auto stream = repeatingCycle(64, 10, 3);
    core::BasePrefetcher base(bigParams());
    const auto res = core::evaluatePredictability(base, stream, 3);
    EXPECT_GT(res.accuracy[0], 0.8);
    // Base has no level-2/3 predictions.
    EXPECT_EQ(res.accuracy[1], 0.0);
    EXPECT_EQ(res.accuracy[2], 0.0);
}

TEST(Predictability, ChainDegradesOnAlternation)
{
    // Two alternating contexts around a shared address break the MRU
    // path: Chain loses deep levels, Replicated keeps them.
    std::vector<sim::Addr> stream;
    for (int rep = 0; rep < 200; ++rep) {
        // a, b, c then b, e, f: successors of b alternate.
        for (sim::Addr a : {0x1000, 0x2000, 0x3000, 0x2000, 0x5000,
                            0x6000})
            stream.push_back(a);
    }
    core::CorrelationParams p = bigParams();
    core::ChainPrefetcher chain(p);
    core::ReplicatedPrefetcher repl(p);
    const auto chain_res =
        core::evaluatePredictability(chain, stream, 3);
    const auto repl_res = core::evaluatePredictability(repl, stream, 3);
    EXPECT_GT(repl_res.accuracy[1], chain_res.accuracy[1]);
    EXPECT_GE(repl_res.accuracy[2], chain_res.accuracy[2]);
    EXPECT_GT(repl_res.accuracy[1], 0.9);
}

TEST(Predictability, EmptyStream)
{
    core::ReplicatedPrefetcher repl(bigParams());
    const auto res = core::evaluatePredictability(repl, {}, 3);
    EXPECT_EQ(res.misses, 0u);
    EXPECT_EQ(res.accuracy[0], 0.0);
}

} // namespace
