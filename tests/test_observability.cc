/**
 * @file
 * Tests of the observability layer: the stat registry, the Welford /
 * percentile extensions of sim/stats.hh, the time-series sampler's
 * determinism guarantee, the Chrome trace-event export, and TextTable
 * edge cases.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/system.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/timeseries.hh"
#include "sim/trace_event.hh"
#include "workloads/workload.hh"

namespace {

// ---------------------------------------------------------------------
// sim/stats.hh extensions
// ---------------------------------------------------------------------

TEST(SampleStatTest, WelfordVarianceMatchesDirect)
{
    sim::SampleStat s;
    const double vals[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    double sum = 0.0;
    for (double v : vals) {
        s.sample(v);
        sum += v;
    }
    const double mean = sum / 8.0;
    double var = 0.0;
    for (double v : vals)
        var += (v - mean) * (v - mean);
    var /= 8.0;
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(SampleStatTest, VarianceDegenerateCases)
{
    sim::SampleStat s;
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    s.sample(42.0);
    EXPECT_EQ(s.variance(), 0.0);  // one sample: no dispersion
    s.sample(42.0);
    EXPECT_NEAR(s.variance(), 0.0, 1e-12);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(BinnedHistogramTest, PercentileInterpolatesWithinBin)
{
    sim::BinnedHistogram h({0.0, 10.0, 20.0});
    for (int i = 0; i < 10; ++i)
        h.sample(5.0);  // 10 samples in [0, 10)
    for (int i = 0; i < 10; ++i)
        h.sample(15.0);  // 10 samples in [10, 20)
    // Rank 10 of 20 sits exactly at the [0,10) bin's upper edge.
    EXPECT_NEAR(h.p50(), 10.0, 1e-9);
    // Rank 19 of 20: 9 samples into the second bin of 10.
    EXPECT_NEAR(h.p95(), 10.0 + 9.0, 1e-9);
}

TEST(BinnedHistogramTest, PercentileOpenFinalBinAndEmpty)
{
    sim::BinnedHistogram h({0.0, 100.0});
    EXPECT_EQ(h.percentile(0.5), 0.0);  // empty
    h.sample(250.0);                    // lands in the open final bin
    EXPECT_EQ(h.p50(), 100.0);          // lower edge of the open bin
    EXPECT_EQ(h.p95(), 100.0);
}

TEST(BinnedHistogramTest, BelowFirstEdgeCountedSeparately)
{
    sim::BinnedHistogram h({10.0, 20.0});
    h.sample(5.0);
    h.sample(15.0);
    EXPECT_EQ(h.below(), 1u);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    // Percentiles are over in-range samples only.
    EXPECT_NEAR(h.p50(), 15.0, 1e-9);
    h.reset();
    EXPECT_EQ(h.below(), 0u);
}

// ---------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------

TEST(StatRegistryTest, RejectsDuplicateAndEmptyNames)
{
    sim::StatRegistry reg;
    std::uint64_t a = 1, b = 2;
    reg.addCounter("x.count", &a);
    EXPECT_TRUE(reg.has("x.count"));
    EXPECT_THROW(reg.addCounter("x.count", &b),
                 std::invalid_argument);
    EXPECT_THROW(reg.addGauge("x.count", [] { return 0.0; }),
                 std::invalid_argument);
    EXPECT_THROW(reg.addCounter("", &b), std::invalid_argument);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistryTest, VisitsInNameOrderWithLiveValues)
{
    sim::StatRegistry reg;
    std::uint64_t c = 5;
    sim::SampleStat s;
    s.sample(3.0);
    reg.addCounter("b.counter", &c);
    reg.addSample("a.sample", &s);
    reg.addGauge("c.gauge", [] { return 1.5; });
    c = 7;  // registry holds pointers, not copies

    struct Collect : sim::StatVisitor
    {
        std::vector<std::string> names;
        std::uint64_t counterSeen = 0;
        void counter(const std::string &n, std::uint64_t v) override
        {
            names.push_back(n);
            counterSeen = v;
        }
        void gauge(const std::string &n, double) override
        {
            names.push_back(n);
        }
        void sampleStat(const std::string &n,
                        const sim::SampleStat &) override
        {
            names.push_back(n);
        }
        void histogram(const std::string &n,
                       const sim::BinnedHistogram &) override
        {
            names.push_back(n);
        }
    } v;
    reg.visit(v);
    ASSERT_EQ(v.names.size(), 3u);
    EXPECT_EQ(v.names[0], "a.sample");
    EXPECT_EQ(v.names[1], "b.counter");
    EXPECT_EQ(v.names[2], "c.gauge");
    EXPECT_EQ(v.counterSeen, 7u);
}

TEST(StatRegistryTest, DumpJsonIncludesBelowCount)
{
    sim::StatRegistry reg;
    sim::BinnedHistogram h({10.0, 20.0});
    h.sample(5.0);
    h.sample(15.0);
    reg.addHistogram("gaps", &h);
    const std::string json = reg.dumpJson();
    EXPECT_NE(json.find("\"below\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker
// ---------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, SanityOnKnownInputs)
{
    EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5e3, null]}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
    EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
    EXPECT_FALSE(JsonChecker("[1, 2").valid());
}

TEST(StatRegistryTest, DumpJsonIsWellFormed)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.02;
    driver::SystemConfig cfg =
        driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl,
                                      "Tree");
    workloads::WorkloadParams wp;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("Tree", wp);
    driver::System sys(cfg, *wl);
    sys.run();
    const std::string json = sys.statRegistry().dumpJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    // Stats from every layer are present.
    EXPECT_NE(json.find("\"l2.misses\""), std::string::npos);
    EXPECT_NE(json.find("\"bus.busy.demand_data\""), std::string::npos);
    EXPECT_NE(json.find("\"dram.accesses\""), std::string::npos);
    EXPECT_NE(json.find("\"ulmt.response_cycles\""),
              std::string::npos);
    EXPECT_NE(json.find("\"memsys.queue3.issued\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------

TEST(TimeSeriesTest, CompactionBoundsRowsAndDoublesInterval)
{
    sim::TimeSeriesSampler sampler(100, /*capacity=*/8);
    int calls = 0;
    sampler.addChannel("n", [&] { return double(++calls); });
    for (sim::Cycle t = 100; t <= 10000; t += 100)
        sampler.tick(t);
    sim::TimeSeriesData d = sampler.take();
    EXPECT_LT(d.cycles.size(), 8u);
    EXPECT_GT(d.interval, 100u);  // doubled at least once
    ASSERT_EQ(d.channels.size(), 1u);
    EXPECT_EQ(d.values[0].size(), d.cycles.size());
    // Rows stay chronologically ordered across compactions.
    for (std::size_t i = 1; i < d.cycles.size(); ++i)
        EXPECT_LT(d.cycles[i - 1], d.cycles[i]);
}

/**
 * The ticker keeps firing at the initial interval forever; the
 * sampler must decimate after compaction, not compact every
 * capacity/2 ticks (which used to overflow `interval` by doubling it
 * once per compaction on long runs).
 */
TEST(TimeSeriesTest, MillionsOfTicksKeepIntervalSane)
{
    sim::TimeSeriesSampler sampler(16384, /*capacity=*/64);
    sampler.addChannel("c", [] { return 0.0; });
    for (sim::Cycle t = 1; t <= 2'000'000; ++t)
        sampler.tick(t * 16384);
    sampler.flush(2'000'001 * sim::Cycle(16384));
    sim::TimeSeriesData d = sampler.take();
    EXPECT_LT(d.cycles.size(), 64u);
    EXPECT_GT(d.interval, 16384u);
    // 2M offers is ~15 doublings with decimation; without it the
    // interval would have doubled ~62k times and wrapped to zero.
    EXPECT_LT(d.interval, sim::Cycle(1) << 40);
    for (std::size_t i = 1; i < d.cycles.size(); ++i)
        EXPECT_LT(d.cycles[i - 1], d.cycles[i]);
}

TEST(TimeSeriesTest, DuplicateTickIsNoOp)
{
    sim::TimeSeriesSampler sampler(10);
    sampler.addChannel("c", [] { return 1.0; });
    sampler.tick(50);
    sampler.tick(50);
    EXPECT_EQ(sampler.samples(), 1u);
}

/** Fingerprints must be bit-identical with sampling on or off. */
TEST(ObservabilityDeterminismTest, SamplingDoesNotPerturbSimulation)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.05;
    workloads::WorkloadParams wp;
    wp.scale = opt.scale;

    auto fingerprint = [&](sim::Cycle interval) {
        driver::SystemConfig cfg = driver::conven4PlusUlmtConfig(
            opt, core::UlmtAlgo::Repl, "Mcf");
        cfg.metricsInterval = interval;
        auto wl = workloads::makeWorkload("Mcf", wp);
        driver::System sys(cfg, *wl);
        driver::RunResult r = sys.run();
        return std::make_pair(driver::resultFingerprint(r),
                              r.metrics.empty());
    };

    const auto off = fingerprint(0);
    const auto dense = fingerprint(1024);
    const auto sparse = fingerprint(65536);
    EXPECT_TRUE(off.second);
    EXPECT_FALSE(dense.second);
    EXPECT_EQ(off.first, dense.first);
    EXPECT_EQ(off.first, sparse.first);
}

/** Same guarantee through the parallel runner funnel. */
TEST(ObservabilityDeterminismTest, ParallelRunnerSamplingInvariant)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.02;
    const std::vector<std::string> apps = {"Tree", "Mcf"};

    auto sweep = [&](sim::Cycle interval) {
        driver::setMetricsIntervalOverride(interval);
        std::vector<std::function<driver::RunResult()>> tasks;
        for (const std::string &app : apps) {
            tasks.push_back([&, app] {
                return driver::runOne(
                    app,
                    driver::conven4PlusUlmtConfig(
                        opt, core::UlmtAlgo::Repl, app),
                    opt);
            });
        }
        auto results = driver::runTasks(tasks, 2);
        driver::clearMetricsIntervalOverride();
        std::string fp;
        for (const auto &r : results)
            fp += driver::resultFingerprint(r) + "\n";
        return fp;
    };

    EXPECT_EQ(sweep(0), sweep(4096));
}

// ---------------------------------------------------------------------
// Trace-event export
// ---------------------------------------------------------------------

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(TraceEventTest, WriterEmitsWellFormedJson)
{
    const std::string path =
        testing::TempDir() + "trace_writer_test.json";
    {
        sim::TraceEventWriter writer(path);
        sim::TraceEventBuffer buf;
        buf.complete("span \"quoted\"", "cat", 10, 5,
                     sim::traceTidUlmt);
        buf.instant("marker", "cat", 12, sim::traceTidMemsys);
        buf.counter("depth", 14, 3.5, sim::traceTidSampler);
        const std::uint64_t id = buf.newFlowId();
        buf.flow(sim::TracePhase::FlowStart, id, 10,
                 sim::traceTidMemsys);
        buf.flow(sim::TracePhase::FlowEnd, id, 14, sim::traceTidUlmt);
        writer.writeProcess("Mcf/Repl", buf);
        writer.finish();
        writer.finish();  // idempotent
    }
    const std::string text = slurp(path);
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"bp\": \"e\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceEventTest, EndToEndSimulationTrace)
{
    const std::string path =
        testing::TempDir() + "trace_sim_test.json";
    {
        driver::ExperimentOptions opt;
        opt.scale = 0.02;
        driver::SystemConfig cfg = driver::conven4PlusUlmtConfig(
            opt, core::UlmtAlgo::Repl, "Tree");
        workloads::WorkloadParams wp;
        wp.scale = opt.scale;
        auto wl = workloads::makeWorkload("Tree", wp);
        driver::System sys(cfg, *wl);
        sim::TraceEventBuffer buf;
        sys.setTraceEvents(&buf);
        sys.run();
        EXPECT_GT(buf.size(), 0u);
        sim::TraceEventWriter writer(path);
        writer.writeProcess("Tree/Conven4+Repl", buf);
        writer.finish();
    }
    const std::string text = slurp(path);
    EXPECT_TRUE(JsonChecker(text).valid())
        << text.substr(0, 400);
    // ULMT episode spans and nested prefetch steps are present, as
    // are bus/DRAM spans and the demand-miss flow arrows.
    EXPECT_NE(text.find("\"miss_episode\""), std::string::npos);
    EXPECT_NE(text.find("\"prefetch_step\""), std::string::npos);
    EXPECT_NE(text.find("\"demand_fetch\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceEventTest, DisabledPathLeavesNoTrace)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.02;
    driver::SystemConfig cfg = driver::conven4Config(opt);
    workloads::WorkloadParams wp;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("Tree", wp);
    driver::System sys(cfg, *wl);
    // No setTraceEvents call: nothing should be buffered anywhere and
    // the run must still complete normally.
    driver::RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
}

TEST(TraceEventTest, WriterThrowsOnUnwritablePath)
{
    EXPECT_THROW(
        sim::TraceEventWriter("/nonexistent-dir-xyz/trace.json"),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// TextTable edge cases
// ---------------------------------------------------------------------

TEST(TextTableTest, EmptyHeaderListRendersWithoutUnderflow)
{
    driver::TextTable t({});
    const std::string out = t.render();
    // Must not attempt a (size_t)(-2)-character separator.
    EXPECT_LT(out.size(), 16u);
}

TEST(TextTableTest, SingleColumnRender)
{
    driver::TextTable t({"col"});
    t.addRow({"v"});
    const std::string out = t.render();
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("v"), std::string::npos);
}

// ---------------------------------------------------------------------
// Workload registry error-message satellite
// ---------------------------------------------------------------------

TEST(WorkloadErrorTest, TraceOpenFailureNamesTheInput)
{
    const std::string name = "trace:/no/such/file.trace";
    try {
        workloads::makeWorkload(name, {});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(name),
                  std::string::npos)
            << e.what();
    }
    try {
        workloads::tableNumRows(name);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(name),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
