/**
 * @file
 * Tests for the multiprogrammed (interleaved) workload utility and the
 * Section 3.4 interference claim.
 */

#include <gtest/gtest.h>

#include "workloads/interleaved.hh"

namespace {

workloads::WorkloadParams
tiny()
{
    workloads::WorkloadParams p;
    p.scale = 0.03;
    return p;
}

TEST(Interleaved, EmitsAllRecordsOfBothWorkloads)
{
    auto a = workloads::makeWorkload("Mcf", tiny());
    auto b = workloads::makeWorkload("Gap", tiny());
    const std::size_t expect = a->traceLength() + b->traceLength();
    a->reset();
    b->reset();
    workloads::InterleavedWorkload both(std::move(a), std::move(b),
                                        1000);
    cpu::TraceRecord rec;
    std::size_t n = 0;
    while (both.next(rec))
        ++n;
    EXPECT_EQ(n, expect);
}

TEST(Interleaved, SwitchesAtQuantum)
{
    auto a = workloads::makeWorkload("Mcf", tiny());
    auto b = workloads::makeWorkload("CG", tiny());
    workloads::InterleavedWorkload both(std::move(a), std::move(b),
                                        500);
    // Mcf addresses start at the workload base; CG uses a disjoint
    // range only in a fresh address space -- instead distinguish by
    // dependence: Mcf records are dependent, CG's are not.
    cpu::TraceRecord rec;
    std::size_t dep_flips = 0;
    bool last_dep = false;
    for (int i = 0; i < 5000 && both.next(rec); ++i) {
        if (rec.hasRef() && rec.dependsOnPrev != last_dep) {
            last_dep = rec.dependsOnPrev;
            ++dep_flips;
        }
    }
    // Both kinds of records appeared (interleaving happened).
    EXPECT_GT(dep_flips, 2u);
}

TEST(Interleaved, ContextSwitchBreaksDependence)
{
    auto a = workloads::makeWorkload("Mcf", tiny());
    auto b = workloads::makeWorkload("MST", tiny());
    // Round-robin switching only happens while both are live.
    const std::size_t both_live =
        2 * std::min(a->traceLength(), b->traceLength());
    a->reset();
    b->reset();
    workloads::InterleavedWorkload both(std::move(a), std::move(b),
                                        100);
    cpu::TraceRecord rec;
    std::size_t idx = 0;
    std::size_t boundary_deps = 0;
    while (both.next(rec)) {
        ++idx;
        if (idx >= both_live)
            break;
        if (idx % 100 == 1 && idx > 1 && rec.hasRef() &&
            rec.dependsOnPrev)
            ++boundary_deps;
    }
    // The first record after each switch must not chain across it.
    EXPECT_EQ(boundary_deps, 0u);
}

TEST(Interleaved, NameCombines)
{
    workloads::InterleavedWorkload both(
        workloads::makeWorkload("Mcf", tiny()),
        workloads::makeWorkload("Gap", tiny()));
    EXPECT_EQ(both.name(), "Mcf|Gap");
}

} // namespace
