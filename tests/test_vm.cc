/**
 * @file
 * Tests for the virtual-memory subsystem (DESIGN.md section 13):
 * page-size parsing, allocate-on-touch translation, TLB hit/miss
 * accounting and eviction, hottest-page remap victim selection,
 * deterministic remap engines, save/restore round-trips, the
 * physical page-cross prefetch drop, and the end-to-end System
 * integration (fingerprint determinism, page-size restore guard).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/state.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/system.hh"
#include "mem/memory_system.hh"
#include "vm/vm.hh"
#include "workloads/workload.hh"

namespace {

// ====================================================================
// Page-size parsing
// ====================================================================

TEST(VmPageSize, ParseAcceptsBothSizesCaseInsensitively)
{
    EXPECT_EQ(vm::parsePageSize("4k"), 4096u);
    EXPECT_EQ(vm::parsePageSize("4K"), 4096u);
    EXPECT_EQ(vm::parsePageSize("4096"), 4096u);
    EXPECT_EQ(vm::parsePageSize("2m"), 2u << 20);
    EXPECT_EQ(vm::parsePageSize("2M"), 2u << 20);
    EXPECT_EQ(vm::parsePageSize("2097152"), 2u << 20);
}

TEST(VmPageSize, ParseRejectsEverythingElse)
{
    EXPECT_THROW(vm::parsePageSize(""), std::invalid_argument);
    EXPECT_THROW(vm::parsePageSize("1g"), std::invalid_argument);
    EXPECT_THROW(vm::parsePageSize("8192"), std::invalid_argument);
}

TEST(VmPageSize, NameRoundTrips)
{
    EXPECT_EQ(vm::pageSizeName(4096u), "4k");
    EXPECT_EQ(vm::pageSizeName(2u << 20), "2m");
}

TEST(VmSpec, OnTracksEveryActivationPath)
{
    vm::VmSpec spec;
    EXPECT_FALSE(spec.on());  // the pre-VM machine
    spec.enabled = true;
    EXPECT_TRUE(spec.on());
    spec = vm::VmSpec{};
    spec.remapRate = 10.0;
    EXPECT_TRUE(spec.on());
    spec = vm::VmSpec{};
    spec.pageBytes = 2u << 20;
    EXPECT_TRUE(spec.on());
}

// ====================================================================
// Translation + TLB
// ====================================================================

struct VmFixture : public ::testing::Test
{
    vm::VmSpec
    spec4k(double rate = 0.0)
    {
        vm::VmSpec s;
        s.enabled = true;
        s.remapRate = rate;
        return s;
    }

    sim::EventQueue eq;
};

TEST_F(VmFixture, TranslateAllocatesOnTouchAndIsStable)
{
    vm::Vm v(eq, spec4k(), 1);
    sim::Cycle when = 0;
    const sim::Addr pa = v.translate(0, 0x1234, when);
    EXPECT_GE(pa, vm::physFrameBase);
    EXPECT_EQ(pa & 0xFFFu, 0x234u);  // page offset preserved

    sim::Cycle when2 = 0;
    EXPECT_EQ(v.translate(0, 0x1234, when2), pa);  // stable mapping
    EXPECT_EQ(v.translate(0, 0x1000, when2), pa - 0x234);

    // A different page gets a different frame.
    const sim::Addr pb = v.translate(0, 0x200000, when2);
    EXPECT_NE(pb >> 12, pa >> 12);
    EXPECT_EQ(v.pagesMapped(0), 2u);
}

TEST_F(VmFixture, CoresGetPrivateAddressSpaces)
{
    vm::Vm v(eq, spec4k(), 2);
    sim::Cycle when = 0;
    const sim::Addr p0 = v.translate(0, 0x4000, when);
    const sim::Addr p1 = v.translate(1, 0x4000, when);
    EXPECT_NE(p0, p1);  // same vaddr, distinct frames
    EXPECT_EQ(p0 & 0xFFFu, p1 & 0xFFFu);
}

TEST_F(VmFixture, TlbMissChargesWalkAndHitIsFree)
{
    vm::Vm v(eq, spec4k(), 1);
    sim::Cycle when = 100;
    v.translate(0, 0x5000, when);
    EXPECT_EQ(when, 100 + vm::pageWalkCycles);
    EXPECT_EQ(v.coreStats(0).tlbMisses, 1u);
    EXPECT_EQ(v.coreStats(0).walkCycles, vm::pageWalkCycles);

    sim::Cycle hit_when = 500;
    v.translate(0, 0x5040, hit_when);  // same page
    EXPECT_EQ(hit_when, 500u);  // hit runs in parallel with L1 index
    EXPECT_EQ(v.coreStats(0).tlbHits, 1u);
    EXPECT_EQ(v.coreStats(0).accesses, 2u);
}

TEST_F(VmFixture, TlbEvictsLruWithinASet)
{
    vm::Vm v(eq, spec4k(), 1);
    sim::Cycle when = 0;
    // The 4 KB class has 16 sets x 4 ways; vpages 0,16,32,48,64 all
    // index set 0, so the fifth fill evicts the LRU entry (vpage 0).
    for (std::uint64_t vpage : {0u, 16u, 32u, 48u, 64u})
        v.translate(0, sim::Addr(vpage) << 12, when);
    EXPECT_EQ(v.coreStats(0).tlbMisses, 5u);

    v.translate(0, 0x0, when);  // vpage 0 was evicted
    EXPECT_EQ(v.coreStats(0).tlbMisses, 6u);
    v.translate(0, sim::Addr(64) << 12, when);  // MRU still resident
    EXPECT_EQ(v.coreStats(0).tlbHits, 1u);
}

// ====================================================================
// Remap engine
// ====================================================================

struct RemapLog
{
    std::vector<sim::Addr> oldPages, newPages;
    std::vector<std::uint32_t> pageBytes;
};

TEST_F(VmFixture, RemapMigratesTheHottestPage)
{
    vm::Vm v(eq, spec4k(/*rate=*/100.0), 1);
    RemapLog log;
    v.setRemapCallback(
        [&](sim::Addr o, sim::Addr n, std::uint32_t pb) {
            log.oldPages.push_back(o);
            log.newPages.push_back(n);
            log.pageBytes.push_back(pb);
        });

    // Touch counters advance on page walks.  vpage 3 walks once;
    // vpage 16 walks twice (pushed out of set 0 by vpages 32..80,
    // then re-walked), so it is the hottest page even though map
    // order would visit vpage 3 first.
    sim::Cycle when = 0;
    v.translate(0, sim::Addr(3) << 12, when);
    const sim::Addr hot = v.translate(0, sim::Addr(16) << 12, when);
    for (std::uint64_t vpage : {32u, 48u, 64u, 80u})
        v.translate(0, sim::Addr(vpage) << 12, when);
    v.translate(0, sim::Addr(16) << 12, when);  // second walk

    v.remapAction()();  // one remap, no event-queue run needed
    ASSERT_EQ(log.oldPages.size(), 1u);
    EXPECT_EQ(log.oldPages[0], hot >> 12);  // page numbers, not bytes
    EXPECT_EQ(log.pageBytes[0], 4096u);
    EXPECT_EQ(v.remaps(), 1u);
    EXPECT_EQ(v.coreStats(0).remaps, 1u);

    // The page moved: a re-touch misses the (invalidated) TLB and
    // lands in the new frame.
    sim::Cycle when2 = 0;
    const sim::Addr moved = v.translate(0, sim::Addr(16) << 12, when2);
    EXPECT_EQ(moved >> 12, log.newPages[0]);
    EXPECT_NE(moved, hot);
    EXPECT_EQ(when2, sim::Cycle(vm::pageWalkCycles));
}

TEST_F(VmFixture, RemapEnginesAreDeterministic)
{
    RemapLog logs[2];
    for (int i = 0; i < 2; ++i) {
        sim::EventQueue q;
        vm::Vm v(q, spec4k(/*rate=*/100.0), 2);
        v.setRemapCallback(
            [&, i](sim::Addr o, sim::Addr n, std::uint32_t) {
                logs[i].oldPages.push_back(o);
                logs[i].newPages.push_back(n);
            });
        sim::Cycle when = 0;
        for (unsigned core = 0; core < 2; ++core)
            for (sim::Addr a = 0; a < 0x8000; a += 0x1000)
                v.translate(core, a, when);
        for (int r = 0; r < 8; ++r) {
            // A tick only migrates when the machine translated since
            // the previous one, so keep every tick active.
            v.translate(static_cast<unsigned>(r % 2),
                        sim::Addr(r % 8) * 0x1000, when);
            v.remapAction()();
        }
    }
    EXPECT_EQ(logs[0].oldPages.size(), 8u);
    EXPECT_EQ(logs[0].oldPages, logs[1].oldPages);
    EXPECT_EQ(logs[0].newPages, logs[1].newPages);
}

// ====================================================================
// Save / restore
// ====================================================================

TEST_F(VmFixture, SaveRestoreRoundTripsBitIdentically)
{
    vm::Vm v(eq, spec4k(/*rate=*/100.0), 2);
    sim::Cycle when = 0;
    for (unsigned core = 0; core < 2; ++core)
        for (sim::Addr a = 0; a < 0x6000; a += 0x800)
            v.translate(core, a, when);
    v.remapAction()();

    ckpt::StateWriter w;
    v.saveState(w);

    sim::EventQueue eq2;
    vm::Vm v2(eq2, spec4k(/*rate=*/100.0), 2);
    ckpt::StateReader r(w.buffer());
    v2.restoreState(r);
    r.finish();

    ckpt::StateWriter w2;
    v2.saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());

    // The restored machine translates identically.
    sim::Cycle wa = 0, wb = 0;
    EXPECT_EQ(v.translate(0, 0x123, wa), v2.translate(0, 0x123, wb));
    EXPECT_EQ(wa, wb);
}

TEST_F(VmFixture, SectionSummaryDescribesTheShape)
{
    vm::Vm v(eq, spec4k(), 1);
    sim::Cycle when = 0;
    v.translate(0, 0x0, when);
    v.translate(0, 0x1000, when);

    ckpt::StateWriter w;
    v.saveState(w);
    const std::string s = vm::sectionSummary(w.buffer(), 1, 4096);
    EXPECT_NE(s.find("4k pages"), std::string::npos);
    EXPECT_NE(s.find("pages/core 2"), std::string::npos);
}

// ====================================================================
// Physical page-cross prefetch drop
// ====================================================================

TEST(VmPageCross, ControllerDropsCrossPagePushes)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    ms.setPageShift(12);

    // Same page as the trigger: issued.
    EXPECT_TRUE(ms.ulmtPrefetch(1, 0x1040, 0, 0, 0, /*trigger=*/0x1000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesIssued, 1u);

    // Different page: dropped and counted.
    EXPECT_FALSE(ms.ulmtPrefetch(2, 0x2040, 0, 0, 0, /*trigger=*/0x1000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedPageCross, 1u);

    // No trigger (the hardware-correlation baseline): the rule is
    // skipped even with the VM layer on.
    EXPECT_TRUE(ms.ulmtPrefetch(3, 0x3040));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedPageCross, 1u);
}

TEST(VmPageCross, RuleIsOffWithoutTheVmLayer)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    EXPECT_TRUE(ms.ulmtPrefetch(1, 0x2040, 0, 0, 0, /*trigger=*/0x1000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedPageCross, 0u);
}

// ====================================================================
// End-to-end System integration
// ====================================================================

driver::SystemConfig
vmConfig(double remap_rate, std::uint32_t page_bytes)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.002;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
    cfg.ulmt.numRows = 4096;
    cfg.metricsInterval = 0;
    cfg.vm.enabled = true;
    cfg.vm.remapRate = remap_rate;
    cfg.vm.pageBytes = page_bytes;
    return cfg;
}

driver::RunResult
runMst(const driver::SystemConfig &cfg)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    return sys.run();
}

TEST(VmEndToEnd, TranslationRunsAndReportsStats)
{
    const driver::RunResult r = runMst(vmConfig(0.0, 4096));
    EXPECT_TRUE(r.vmOn);
    EXPECT_EQ(r.vmPageBytes, 4096u);
    EXPECT_EQ(r.vmRemaps, 0u);  // rate 0: translation only
    EXPECT_GT(r.vmTlbHits + r.vmTlbMisses, 0u);
    EXPECT_GT(r.vmPagesMapped, 0u);
}

TEST(VmEndToEnd, RemapsFireAndAreDeterministic)
{
    const driver::RunResult a = runMst(vmConfig(500.0, 4096));
    const driver::RunResult b = runMst(vmConfig(500.0, 4096));
    EXPECT_GT(a.vmRemaps, 0u);
    EXPECT_EQ(driver::resultFingerprint(a),
              driver::resultFingerprint(b));
}

TEST(VmEndToEnd, HugePagesMapFewerPages)
{
    const driver::RunResult small = runMst(vmConfig(0.0, 4096));
    const driver::RunResult huge = runMst(vmConfig(0.0, 2u << 20));
    EXPECT_GT(huge.vmPagesMapped, 0u);
    EXPECT_LT(huge.vmPagesMapped, small.vmPagesMapped);
}

TEST(VmEndToEnd, VmOffRegistersNoVmStats)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.001;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::SystemConfig cfg;
    cfg.metricsInterval = 0;
    driver::System sys(cfg, *wl);
    sys.run();
    EXPECT_FALSE(sys.statRegistry().has("vm.remaps"));
}

TEST(VmEndToEnd, RestoreRejectsPageSizeMismatchBeforeFingerprint)
{
    const std::string path = "test_vm_pagesize.ulmtckp";
    driver::SystemConfig cfg = vmConfig(0.0, 4096);
    {
        workloads::WorkloadParams wp;
        wp.scale = 0.002;
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg, *wl);
        sys.setCheckpointMeta("MST", wp.seed, wp.scale);
        sys.setCheckpointTrigger("200", path);
        const driver::RunResult r = sys.run();
        ASSERT_GT(r.ckptBytes, 0u);
    }

    // Same machine except for the page size: the shape check must
    // fire first, naming the sizes, not the opaque fingerprint.
    driver::SystemConfig cfg2m = vmConfig(0.0, 2u << 20);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg2m, *wl);
    try {
        sys.restoreCheckpoint(path);
        FAIL() << "page-size mismatch restored";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("page"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(VmEndToEnd, CheckpointRestoreResumesBitIdentically)
{
    const std::string path = "test_vm_resume.ulmtckp";
    driver::SystemConfig cfg = vmConfig(500.0, 4096);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;

    driver::RunResult full;
    {
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg, *wl);
        sys.setCheckpointMeta("MST", wp.seed, wp.scale);
        sys.setCheckpointTrigger("500", path);
        full = sys.run();
        ASSERT_GT(full.ckptBytes, 0u);
    }
    ASSERT_GT(full.vmRemaps, 0u);

    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.restoreCheckpoint(path);
    const driver::RunResult resumed = sys.run();
    EXPECT_EQ(driver::resultFingerprint(full),
              driver::resultFingerprint(resumed));
    std::remove(path.c_str());
}

} // namespace
