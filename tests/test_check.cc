/**
 * @file
 * Tests for the runtime invariant checker (DESIGN.md section 10):
 * the three bugs it pins (queue-1 cross-match attribution, the
 * disabled-filter admit counter, the fillOrigin reset on insert),
 * the invariant catalog — every cataloged invariant must fire on
 * deliberately seeded corruption — the deep reference models, and
 * checker passivity (bit-identical cycles with checking off or deep).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "check/ref_models.hh"
#include "core/base_chain.hh"
#include "core/factory.hh"
#include "core/replicated.hh"
#include "core/ulmt_engine.hh"
#include "driver/experiment.hh"
#include "driver/system.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/prefetch_filter.hh"
#include "workloads/workload.hh"

namespace check {

/**
 * The test-only corruption backdoor declared in check/check.hh: each
 * helper mutates one private structure in a way the corresponding
 * invariant must catch.
 */
struct CheckTestPeer
{
    // --- PrefetchFilter ---------------------------------------------
    static void
    fifoPushOnly(mem::PrefetchFilter &f, sim::Addr a)
    {
        f.fifo_.push_back(a);  // FIFO/present_ now disagree
    }

    static void
    presentBump(mem::PrefetchFilter &f, sim::Addr a)
    {
        ++f.present_[a];
    }

    static void
    presentZero(mem::PrefetchFilter &f, sim::Addr a)
    {
        f.present_[a] = 0;
    }

    // --- Cache -------------------------------------------------------
    static mem::CacheLine &
    line(mem::Cache &c, std::uint32_t set, std::uint32_t way)
    {
        return c.setBase(set)[way];
    }

    // --- MemorySystem ------------------------------------------------
    static void
    ghostDemand(mem::MemorySystem &ms, sim::Addr a)
    {
        ++ms.inflightDemand_[a];
    }

    static void
    ghostCpuPf(mem::MemorySystem &ms, sim::Addr a)
    {
        ++ms.inflightCpuPf_[a];
    }

    static void
    ghostPf(mem::MemorySystem &ms, sim::Addr a, sim::Cycle arrival)
    {
        ms.inflightPf_[a] = arrival;
    }

    static void
    dropQueue1(mem::MemorySystem &ms)
    {
        ms.inflightDemand_.clear();
        ms.inflightCpuPf_.clear();
    }

    // --- PairTable ---------------------------------------------------
    static std::vector<core::PairRow> &
    rows(core::PairTable &t)
    {
        return t.rows_;
    }

    // --- ReplicatedPrefetcher ---------------------------------------
    static std::vector<core::ReplRow> &
    rows(core::ReplicatedPrefetcher &r)
    {
        return r.rows_;
    }

    static void
    danglePtr(core::ReplicatedPrefetcher &r)
    {
        ASSERT_FALSE(r.ptrs_.empty());
        r.ptrs_[0].valid = true;
        r.ptrs_[0].index =
            static_cast<std::uint32_t>(r.rows_.size()) + 7;
    }

    // --- UlmtEngine --------------------------------------------------
    static void
    stuffQueue2(core::UlmtEngine &e, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            e.queues2_[0].push_back({0, 0x40 * (i + 1), 0, 0});
    }
};

} // namespace check

namespace {

using check::CheckContext;
using check::CheckTestPeer;

// ====================================================================
// The three bug fixes
// ====================================================================

struct MemsysFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms{eq, tp};
};

TEST_F(MemsysFixture, CpuPrefetchCrossMatchAttributedSeparately)
{
    // A CPU prefetch in flight must drop a colliding ULMT prefetch as
    // a cpu_pf_match, not a demand_match (the old misattribution).
    ms.fetchLine(0, 0x1000, sim::RequestKind::CpuPrefetch);
    EXPECT_EQ(ms.inflightCpuPrefetchCount(), 1u);
    EXPECT_EQ(ms.inflightDemandCount(), 0u);

    EXPECT_FALSE(ms.ulmtPrefetch(1, 0x1000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedCpuPfMatch, 1u);
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedDemandMatch, 0u);

    // A demand in flight still drops as a demand_match.
    ms.fetchLine(2, 0x2000, sim::RequestKind::Demand);
    EXPECT_FALSE(ms.ulmtPrefetch(3, 0x2000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedDemandMatch, 1u);
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedCpuPfMatch, 1u);

    // Completions drain both queue-1 maps.
    eq.run();
    EXPECT_EQ(ms.inflightCpuPrefetchCount(), 0u);
    EXPECT_EQ(ms.inflightDemandCount(), 0u);

    // With nothing in flight the same lines now pass the cross-match.
    EXPECT_TRUE(ms.ulmtPrefetch(eq.now() + 1, 0x1000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesIssued, 1u);
}

TEST(PrefetchFilterFix, DisabledFilterStillCountsAdmits)
{
    mem::PrefetchFilter f(0);
    EXPECT_TRUE(f.admit(0x40));
    EXPECT_TRUE(f.admit(0x40));  // disabled: duplicates pass too
    EXPECT_EQ(f.admits(), 2u);   // previously stuck at 0
    EXPECT_EQ(f.drops(), 0u);
    EXPECT_EQ(f.size(), 0u);     // nothing is recorded
}

TEST(CacheFix, InsertResetsFillOriginOnReusedWay)
{
    mem::CacheGeometry geom{/*sizeBytes=*/1024, /*assoc=*/1,
                            /*lineBytes=*/64};
    mem::Cache c("t", geom);
    mem::Eviction ev;

    // First resident line gets a non-default origin, as the hierarchy
    // caches set after their inserts.
    mem::CacheLine *a = c.insert(0x0, 0, 0, ev);
    a->fillOrigin = sim::ServedBy::L2;

    // Reusing the way (same set: numSets*lineBytes apart) must not
    // leak the previous occupant's origin.
    mem::CacheLine *b = c.insert(0x400, 1, 1, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(b->fillOrigin, sim::ServedBy::Memory);

    CheckContext ctx;
    c.checkInvariants(ctx, sim::ServedBy::Memory);
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean cache");
}

// ====================================================================
// Invariant catalog: every invariant fires on seeded corruption
// ====================================================================

TEST(FilterInvariants, CleanFilterPasses)
{
    mem::PrefetchFilter f(4);
    for (sim::Addr a = 0x40; a <= 0x200; a += 0x40)
        f.admit(a);
    CheckContext ctx;
    f.checkInvariants(ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean filter");
}

TEST(FilterInvariants, FifoOverCapacityFires)
{
    mem::PrefetchFilter f(2);
    f.admit(0x40);
    f.admit(0x80);
    CheckTestPeer::fifoPushOnly(f, 0xc0);
    CheckTestPeer::presentBump(f, 0xc0);
    CheckContext ctx;
    f.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST(FilterInvariants, FifoPresentDisagreementFires)
{
    mem::PrefetchFilter f(8);
    f.admit(0x40);
    CheckTestPeer::presentBump(f, 0x40);  // count 2, FIFO holds 1
    CheckContext ctx;
    f.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST(FilterInvariants, OrphanedFifoEntryFires)
{
    mem::PrefetchFilter f(8);
    f.admit(0x40);
    CheckTestPeer::fifoPushOnly(f, 0x80);  // not in present_
    CheckContext ctx;
    f.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST(FilterInvariants, ZeroCountFires)
{
    mem::PrefetchFilter f(8);
    f.admit(0x40);
    CheckTestPeer::presentZero(f, 0x80);
    CheckContext ctx;
    f.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

struct CacheInvariants : public ::testing::Test
{
    CacheInvariants() : c("t", mem::CacheGeometry{2048, 2, 64})
    {
        mem::Eviction ev;
        c.insert(0x0, 0, 0, ev);     // set 0, way 0
        c.insert(0x1000, 0, 0, ev);  // set 0, way 1 (16 sets * 64 B)
        c.insert(0x40, 0, 0, ev);    // set 1
    }

    mem::Cache c;
};

TEST_F(CacheInvariants, CleanCachePasses)
{
    CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean cache");
}

TEST_F(CacheInvariants, DuplicateTagFires)
{
    CheckTestPeer::line(c, 0, 1).tag = 0x0;  // same as way 0
    CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(CacheInvariants, WrongSetTagFires)
{
    CheckTestPeer::line(c, 0, 0).tag = 0x40;  // maps to set 1
    CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(CacheInvariants, UnalignedTagFires)
{
    CheckTestPeer::line(c, 0, 0).tag = 0x8;  // not line-aligned
    CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(CacheInvariants, StampAboveCounterFires)
{
    CheckTestPeer::line(c, 0, 0).lruStamp = 1u << 20;
    CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(CacheInvariants, UnexpectedFillOriginFires)
{
    CheckTestPeer::line(c, 0, 0).fillOrigin = sim::ServedBy::L2;
    CheckContext ctx;
    c.checkInvariants(ctx, sim::ServedBy::Memory);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(MemsysFixture, CleanQueuesPass)
{
    ms.fetchLine(0, 0x1000, sim::RequestKind::Demand);
    ms.fetchLine(0, 0x2000, sim::RequestKind::CpuPrefetch);
    ms.ulmtPrefetch(1, 0x3000);
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean memsys");
}

TEST_F(MemsysFixture, GhostDemandEntryFires)
{
    CheckTestPeer::ghostDemand(ms, 0x40);  // no pending completion
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_FALSE(ctx.ok());
}

TEST_F(MemsysFixture, GhostCpuPrefetchEntryFires)
{
    CheckTestPeer::ghostCpuPf(ms, 0x40);
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_FALSE(ctx.ok());
}

TEST_F(MemsysFixture, OrphanedCompletionEventFires)
{
    ms.fetchLine(0, 0x1000, sim::RequestKind::Demand);
    ms.fetchLine(0, 0x2000, sim::RequestKind::CpuPrefetch);
    CheckTestPeer::dropQueue1(ms);  // events now have no map entries
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_FALSE(ctx.ok());
}

TEST_F(MemsysFixture, Queue3OverDepthFires)
{
    for (std::uint32_t i = 0; i <= tp.queueDepth; ++i)
        CheckTestPeer::ghostPf(ms, 0x40 * (i + 1), 100);
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_FALSE(ctx.ok());
}

TEST_F(MemsysFixture, PrefetchArrivalMismatchFires)
{
    ms.ulmtPrefetch(1, 0x3000);
    CheckTestPeer::ghostPf(ms, 0x3000, 1);  // wrong arrival cycle
    CheckContext ctx;
    ms.checkInvariants(ctx, eq.saveEvents());
    EXPECT_FALSE(ctx.ok());
}

struct PairTableInvariants : public ::testing::Test
{
    PairTableInvariants()
        : table(core::chainReplDefaults(64), 12), learner(table)
    {
        core::NullCostTracker cost;
        for (sim::Addr a = 0x40; a <= 0x40 * 200; a += 0x40)
            learner.learn(a, cost);
    }

    core::PairRow &
    firstValidRow()
    {
        for (auto &row : CheckTestPeer::rows(table)) {
            if (row.valid)
                return row;
        }
        ADD_FAILURE() << "no valid row";
        return CheckTestPeer::rows(table)[0];
    }

    core::PairTable table;
    core::PairLearner learner;
};

TEST_F(PairTableInvariants, CleanTablePasses)
{
    CheckContext ctx;
    table.checkInvariants(ctx, "table.test");
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean table");
}

TEST_F(PairTableInvariants, SuccessorOverflowFires)
{
    core::PairRow &row = firstValidRow();
    while (row.succ.size() <= table.params().numSucc)
        row.succ.push_back(0xdead000 + 0x40 * row.succ.size());
    CheckContext ctx;
    table.checkInvariants(ctx, "table.test");
    EXPECT_FALSE(ctx.ok());
}

TEST_F(PairTableInvariants, RepeatedSuccessorFires)
{
    core::PairRow &row = firstValidRow();
    row.succ.assign(2, 0xbeef00);  // same address twice
    CheckContext ctx;
    table.checkInvariants(ctx, "table.test");
    EXPECT_FALSE(ctx.ok());
}

TEST_F(PairTableInvariants, WrongSetTagFires)
{
    // Move a valid row's tag so it hashes into a different set.
    core::PairRow &row = firstValidRow();
    row.tag += 0x40;
    CheckContext ctx;
    table.checkInvariants(ctx, "table.test");
    EXPECT_FALSE(ctx.ok());
}

TEST_F(PairTableInvariants, StampAboveCounterFires)
{
    firstValidRow().lruStamp = ~0ULL;
    CheckContext ctx;
    table.checkInvariants(ctx, "table.test");
    EXPECT_FALSE(ctx.ok());
}

struct ReplInvariants : public ::testing::Test
{
    ReplInvariants() : repl(core::chainReplDefaults(64))
    {
        core::NullCostTracker cost;
        for (sim::Addr a = 0x40; a <= 0x40 * 200; a += 0x40)
            repl.learnStep(a, cost);
    }

    core::ReplRow &
    firstValidRow()
    {
        for (auto &row : CheckTestPeer::rows(repl)) {
            if (row.valid)
                return row;
        }
        ADD_FAILURE() << "no valid row";
        return CheckTestPeer::rows(repl)[0];
    }

    core::ReplicatedPrefetcher repl;
};

TEST_F(ReplInvariants, CleanTablePasses)
{
    CheckContext ctx;
    repl.checkInvariants(ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("clean repl");
}

TEST_F(ReplInvariants, LevelListOverflowFires)
{
    core::ReplRow &row = firstValidRow();
    auto &lvl = row.levels[0];
    while (lvl.size() <= repl.levels())
        lvl.push_back(0xdead000 + 0x40 * lvl.size());
    CheckContext ctx;
    repl.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(ReplInvariants, RepeatedLevelEntryFires)
{
    firstValidRow().levels[0].assign(2, 0xbeef00);
    CheckContext ctx;
    repl.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST_F(ReplInvariants, DanglingTrailingPointerFires)
{
    CheckTestPeer::danglePtr(repl);
    CheckContext ctx;
    repl.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST(UlmtEngineInvariants, Queue2OverDepthFires)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    core::UlmtSpec spec;
    spec.algo = core::UlmtAlgo::Base;
    spec.numRows = 1024;
    core::UlmtEngine engine(eq, tp, ms, core::makeAlgorithm(spec));

    CheckContext clean;
    engine.checkInvariants(clean);
    EXPECT_TRUE(clean.ok()) << clean.report("clean engine");

    CheckTestPeer::stuffQueue2(engine, tp.queueDepth + 1);
    CheckContext ctx;
    engine.checkInvariants(ctx);
    EXPECT_FALSE(ctx.ok());
}

// ====================================================================
// Deep reference models
// ====================================================================

TEST(RefLruCache, TracksInsertsAccessesAndDetectsCorruption)
{
    mem::CacheGeometry geom{2048, 2, 64};  // 16 sets, 2 ways
    mem::Cache c("t", geom);
    check::RefLruCache ref(c, "t");
    c.setShadow(&ref);

    // A colliding access pattern: plenty of evictions and promotions.
    mem::Eviction ev;
    for (int i = 0; i < 500; ++i) {
        const sim::Addr addr = 0x40 * ((i * 7) % 97);
        if (mem::CacheLine *hit = c.access(addr))
            (void)hit;
        else
            c.insert(addr, i, i + 5, ev);
    }

    CheckContext ok_ctx;
    ref.diff(c, ok_ctx);
    EXPECT_TRUE(ok_ctx.ok()) << ok_ctx.report("lockstep cache");

    // Any divergence in the real structure must show in the diff.
    for (std::uint32_t set = 0; set < c.numSets(); ++set) {
        mem::CacheLine &l = CheckTestPeer::line(c, set, 0);
        if (l.valid) {
            l.readyAt += 1;
            break;
        }
    }
    CheckContext bad_ctx;
    ref.diff(c, bad_ctx);
    EXPECT_FALSE(bad_ctx.ok());
}

TEST(RefLruCache, ResyncRepairsAfterExternalMutation)
{
    mem::CacheGeometry geom{1024, 2, 64};
    mem::Cache c("t", geom);
    check::RefLruCache ref(c, "t");
    c.setShadow(&ref);

    mem::Eviction ev;
    for (int i = 0; i < 100; ++i)
        c.insert(0x40 * ((i * 11) % 53), i, i, ev);

    // invalidate() does notify; emulate a restore by detaching first.
    sim::Addr victim = sim::invalidAddr;
    c.forEachLine(
        [&](std::uint32_t, std::uint32_t, const mem::CacheLine &l) {
            if (l.valid && victim == sim::invalidAddr)
                victim = l.tag;
        });
    ASSERT_NE(victim, sim::invalidAddr);
    c.setShadow(nullptr);
    c.invalidate(victim);
    c.setShadow(&ref);

    CheckContext stale;
    ref.diff(c, stale);
    EXPECT_FALSE(stale.ok());  // the model missed the mutation

    ref.resync(c);
    CheckContext fresh;
    ref.diff(c, fresh);
    EXPECT_TRUE(fresh.ok()) << fresh.report("after resync");
}

/** Feed one miss through an algorithm exactly as the engine does. */
template <typename Algo>
void
feedMiss(Algo &algo, check::RefPairTable &ref, sim::Addr miss)
{
    core::NullCostTracker cost;
    std::vector<sim::Addr> out;
    algo.prefetchStep(miss, out, cost);
    algo.learnStep(miss, cost);
    ref.observeMiss(miss);
}

TEST(RefPairTable, LockstepWithBase)
{
    core::BasePrefetcher base(core::baseDefaults(64));
    check::RefPairTable ref(base.table(), /*chain_levels=*/0);

    for (int i = 0; i < 2000; ++i)
        feedMiss(base, ref, 0x40 * ((i * 13) % 211));

    CheckContext ctx;
    ref.diff(base.table(), ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("lockstep Base table");
}

TEST(RefPairTable, LockstepWithChain)
{
    core::ChainPrefetcher chain(core::chainReplDefaults(64));
    check::RefPairTable ref(chain.table(), chain.levels());

    for (int i = 0; i < 2000; ++i)
        feedMiss(chain, ref, 0x40 * ((i * 13) % 211));

    CheckContext ctx;
    ref.diff(chain.table(), ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("lockstep Chain table");
}

TEST(RefPairTable, DetectsSuccessorDivergence)
{
    core::BasePrefetcher base(core::baseDefaults(64));
    check::RefPairTable ref(base.table(), 0);
    // A strided stream gives every tag a single fixed successor, so a
    // swap would have nothing to reorder; alternate A's successor
    // between B and C to grow a two-entry MRU list on A's row.
    const sim::Addr a = 0x40 * 3;
    const sim::Addr b = 0x40 * 50;
    const sim::Addr c = 0x40 * 90;
    for (int i = 0; i < 20; ++i) {
        feedMiss(base, ref, a);
        feedMiss(base, ref, (i % 2) ? b : c);
    }

    bool corrupted = false;
    for (auto &row : CheckTestPeer::rows(base.table())) {
        if (row.valid && row.succ.size() >= 2) {
            std::swap(row.succ[0], row.succ[1]);
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    CheckContext ctx;
    ref.diff(base.table(), ctx);
    EXPECT_FALSE(ctx.ok());
}

TEST(RefPairTable, ResyncRepairsAfterRemap)
{
    core::BasePrefetcher base(core::baseDefaults(64));
    check::RefPairTable ref(base.table(), 0);
    for (int i = 0; i < 500; ++i)
        feedMiss(base, ref, 0x40 * ((i * 13) % 211));

    core::NullCostTracker cost;
    base.onPageRemap(0x0, 0x100000, 4096, cost);

    ref.resync(base.table(), base.learner());
    CheckContext ctx;
    ref.diff(base.table(), ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("after remap resync");
}

TEST(RefPairTable, ResyncDoesNotMaskCorruptionAfterRemap)
{
    // The remap-resync path re-adopts the real table as truth; a
    // corruption seeded AFTER the resync must still be caught, i.e.
    // the resynced model keeps diffing at full strength.
    core::BasePrefetcher base(core::baseDefaults(64));
    check::RefPairTable ref(base.table(), 0);
    const sim::Addr a = 0x40 * 3;
    const sim::Addr b = 0x40 * 50;
    const sim::Addr c = 0x40 * 90;
    for (int i = 0; i < 20; ++i) {
        feedMiss(base, ref, a);
        feedMiss(base, ref, (i % 2) ? b : c);
    }

    core::NullCostTracker cost;
    base.onPageRemap(0x0, 0x100000, 4096, cost);
    ref.resync(base.table(), base.learner());

    bool corrupted = false;
    for (auto &row : CheckTestPeer::rows(base.table())) {
        if (row.valid && row.succ.size() >= 2) {
            std::swap(row.succ[0], row.succ[1]);
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    CheckContext ctx;
    ref.diff(base.table(), ctx);
    EXPECT_FALSE(ctx.ok());
}

// ====================================================================
// End-to-end: the checker inside a full System run
// ====================================================================

driver::RunResult
runMstOnce(check::CheckMode mode)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);

    driver::ExperimentOptions opt;
    opt.scale = wp.scale;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Chain, "MST");
    cfg.ulmt.numRows = 4096;
    cfg.metricsInterval = 0;
    cfg.check.mode = mode;
    cfg.check.everyEvents = 512;

    driver::System sys(cfg, *wl);
    driver::RunResult r = sys.run();
    if (mode != check::CheckMode::Off) {
        EXPECT_NE(sys.checker(), nullptr);
        EXPECT_GT(sys.checker()->passes(), 0u);
        EXPECT_TRUE(sys.statRegistry().has("check.passes"));
    } else {
        EXPECT_EQ(sys.checker(), nullptr);
    }
    return r;
}

TEST(CheckerEndToEnd, DeepCheckingIsCleanAndPassive)
{
    const driver::RunResult off = runMstOnce(check::CheckMode::Off);
    const driver::RunResult deep = runMstOnce(check::CheckMode::Deep);
    // Checking must never perturb simulated behaviour.
    EXPECT_EQ(off.cycles, deep.cycles);
    EXPECT_EQ(off.eventsExecuted, deep.eventsExecuted);
}

driver::RunResult
runMstWithRemaps(check::CheckMode mode)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);

    driver::ExperimentOptions opt;
    opt.scale = wp.scale;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Chain, "MST");
    cfg.ulmt.numRows = 4096;
    cfg.metricsInterval = 0;
    cfg.check.mode = mode;
    cfg.check.everyEvents = 512;
    cfg.vm.enabled = true;
    cfg.vm.remapRate = 500.0;

    driver::System sys(cfg, *wl);
    return sys.run();
}

TEST(CheckerEndToEnd, DeepCheckingSurvivesPageRemaps)
{
    // Every remap fires the checker's resync hook; deep checking must
    // stay clean across the churn and remain passive (bit-identical
    // timing with checking off).
    const driver::RunResult off =
        runMstWithRemaps(check::CheckMode::Off);
    const driver::RunResult deep =
        runMstWithRemaps(check::CheckMode::Deep);
    EXPECT_GT(off.vmRemaps, 0u);
    EXPECT_EQ(off.cycles, deep.cycles);
    EXPECT_EQ(off.eventsExecuted, deep.eventsExecuted);
    EXPECT_EQ(off.vmRemaps, deep.vmRemaps);
}

TEST(CheckerEndToEnd, RemapThenRestoreStaysLockstep)
{
    // Snapshot mid-churn, restore under deep checking, and run the
    // rest: the resynced reference models must track the restored
    // machine to a bit-identical final fingerprint.
    const std::string path = "test_check_remap.ulmtckp";
    workloads::WorkloadParams wp;
    wp.scale = 0.002;

    driver::ExperimentOptions opt;
    opt.scale = wp.scale;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Chain, "MST");
    cfg.ulmt.numRows = 4096;
    cfg.metricsInterval = 0;
    cfg.check.mode = check::CheckMode::Deep;
    cfg.check.everyEvents = 512;
    cfg.vm.enabled = true;
    cfg.vm.remapRate = 500.0;

    driver::RunResult full;
    {
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg, *wl);
        sys.setCheckpointMeta("MST", wp.seed, wp.scale);
        sys.setCheckpointTrigger("500", path);
        full = sys.run();
        ASSERT_GT(full.ckptBytes, 0u);
    }
    ASSERT_GT(full.vmRemaps, 0u);

    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.restoreCheckpoint(path);
    const driver::RunResult resumed = sys.run();
    EXPECT_EQ(full.cycles, resumed.cycles);
    EXPECT_EQ(full.vmRemaps, resumed.vmRemaps);
    std::remove(path.c_str());
}

TEST(CheckerEndToEnd, EnvVarEnablesChecking)
{
    ::setenv("ULMT_CHECK", "1", 1);
    workloads::WorkloadParams wp;
    wp.scale = 0.001;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::SystemConfig cfg;
    cfg.metricsInterval = 0;
    driver::System sys(cfg, *wl);
    ::unsetenv("ULMT_CHECK");
    EXPECT_NE(sys.checker(), nullptr);
}

TEST(CheckerEndToEnd, CorruptionAbortsTheRun)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::ExperimentOptions opt;
    opt.scale = wp.scale;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Base, "MST");
    cfg.ulmt.numRows = 1024;
    cfg.metricsInterval = 0;
    cfg.check.mode = check::CheckMode::Basic;
    cfg.check.everyEvents = 64;

    driver::System sys(cfg, *wl);
    CheckTestPeer::ghostDemand(sys.memorySystem(), 0xdead0040);
    EXPECT_THROW(sys.run(), check::CheckError);
}

} // namespace
