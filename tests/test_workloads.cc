/**
 * @file
 * Tests for the nine application kernels: determinism, replayability,
 * footprints relative to the L2, dependence structure, and Table 2
 * metadata.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workloads/workload.hh"

namespace {

workloads::WorkloadParams
smallParams(std::uint64_t seed = 42)
{
    workloads::WorkloadParams p;
    p.seed = seed;
    p.scale = 0.05;
    return p;
}

class EveryApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryApp, ProducesANonTrivialTrace)
{
    auto wl = workloads::makeWorkload(GetParam(), smallParams());
    EXPECT_GT(wl->traceLength(), 1000u);
    cpu::TraceRecord rec;
    std::size_t refs = 0;
    std::size_t n = 0;
    while (wl->next(rec)) {
        ++n;
        if (rec.hasRef())
            ++refs;
    }
    EXPECT_EQ(n, wl->traceLength());
    EXPECT_GT(refs, n / 4);  // memory-intensive
}

TEST_P(EveryApp, DeterministicForSameSeed)
{
    auto a = workloads::makeWorkload(GetParam(), smallParams(7));
    auto b = workloads::makeWorkload(GetParam(), smallParams(7));
    cpu::TraceRecord ra, rb;
    while (true) {
        const bool ha = a->next(ra);
        const bool hb = b->next(rb);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.computeOps, rb.computeOps);
        ASSERT_EQ(ra.isWrite, rb.isWrite);
        ASSERT_EQ(ra.dependsOnPrev, rb.dependsOnPrev);
    }
}

TEST_P(EveryApp, DifferentSeedsDiffer)
{
    auto a = workloads::makeWorkload(GetParam(), smallParams(7));
    auto b = workloads::makeWorkload(GetParam(), smallParams(8));
    cpu::TraceRecord ra, rb;
    bool any_diff = false;
    for (int i = 0; i < 5000; ++i) {
        if (!a->next(ra) || !b->next(rb))
            break;
        if (ra.addr != rb.addr) {
            any_diff = true;
            break;
        }
    }
    // FT is fully deterministic (no random structure); all others
    // must depend on the seed.
    if (GetParam() != "FT") {
        EXPECT_TRUE(any_diff);
    }
}

TEST_P(EveryApp, ResetReplaysIdentically)
{
    auto wl = workloads::makeWorkload(GetParam(), smallParams());
    cpu::TraceRecord rec;
    std::vector<sim::Addr> first;
    for (int i = 0; i < 1000 && wl->next(rec); ++i)
        first.push_back(rec.addr);
    wl->reset();
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(wl->next(rec));
        ASSERT_EQ(rec.addr, first[i]);
    }
}

TEST_P(EveryApp, FullScaleFootprintExceedsL2)
{
    workloads::WorkloadParams p;
    p.scale = 1.0;
    auto wl = workloads::makeWorkload(GetParam(), p);
    EXPECT_GT(wl->footprintBytes(), 512u * 1024u)
        << GetParam() << " must not fit in the 512 KB L2";
}

TEST_P(EveryApp, Table2NumRowsDefined)
{
    const std::uint32_t rows = workloads::tableNumRows(GetParam());
    EXPECT_GE(rows, 8u * 1024u);
    EXPECT_LE(rows, 256u * 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, EveryApp,
    ::testing::ValuesIn(workloads::applicationNames()),
    [](const auto &info) { return info.param; });

TEST(Workloads, NineApplications)
{
    EXPECT_EQ(workloads::applicationNames().size(), 9u);
}

TEST(Workloads, PointerChasersMarkDependences)
{
    for (const char *app_name : {"Mcf", "MST", "Tree"}) {
        const std::string app(app_name);
        auto wl = workloads::makeWorkload(app, smallParams());
        cpu::TraceRecord rec;
        std::size_t deps = 0, refs = 0;
        while (wl->next(rec)) {
            if (rec.hasRef()) {
                ++refs;
                if (rec.dependsOnPrev)
                    ++deps;
            }
        }
        EXPECT_GT(static_cast<double>(deps) /
                      static_cast<double>(refs),
                  0.5)
            << app << " should be dominated by dependent references";
    }
}

TEST(Workloads, StreamingAppsAreMostlyIndependent)
{
    for (const char *app_name : {"CG", "FT", "Sparse"}) {
        const std::string app(app_name);
        auto wl = workloads::makeWorkload(app, smallParams());
        cpu::TraceRecord rec;
        std::size_t deps = 0, refs = 0;
        while (wl->next(rec)) {
            if (rec.hasRef()) {
                ++refs;
                if (rec.dependsOnPrev)
                    ++deps;
            }
        }
        EXPECT_LT(static_cast<double>(deps) /
                      static_cast<double>(refs),
                  0.1)
            << app;
    }
}

TEST(Workloads, ScaleShrinksTheTrace)
{
    workloads::WorkloadParams small = smallParams();
    workloads::WorkloadParams tiny = smallParams();
    tiny.scale = 0.02;
    for (const std::string &app : workloads::applicationNames()) {
        auto a = workloads::makeWorkload(app, small);
        auto b = workloads::makeWorkload(app, tiny);
        EXPECT_GE(a->traceLength(), b->traceLength()) << app;
    }
}

TEST(Workloads, UnknownNameThrowsListingValidNames)
{
    try {
        workloads::makeWorkload("NoSuchApp", smallParams());
        FAIL() << "unknown workload accepted";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("NoSuchApp"), std::string::npos) << what;
        // The message must list every valid name and the trace scheme.
        for (const std::string &app : workloads::applicationNames())
            EXPECT_NE(what.find(app), std::string::npos) << what;
        EXPECT_NE(what.find("trace:<path>"), std::string::npos)
            << what;
    }
}

TEST(Workloads, MalformedTraceSchemeThrows)
{
    // Empty path after the scheme: a usage error, not a file error.
    EXPECT_THROW(workloads::makeWorkload("trace:", smallParams()),
                 std::invalid_argument);
}

TEST(Workloads, MissingTraceFileThrowsWithDiagnostic)
{
    try {
        workloads::makeWorkload("trace:/no/such/file.ulmttrace",
                                smallParams());
        FAIL() << "missing trace file accepted";
    } catch (const std::invalid_argument &e) {
        // The diagnostic names both the path and the workload string
        // the caller passed.
        EXPECT_NE(std::string(e.what()).find("/no/such/file"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what())
                      .find("trace:/no/such/file.ulmttrace"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Workloads, UnknownTableRowsAppThrows)
{
    EXPECT_THROW(workloads::tableNumRows("NoSuchApp"),
                 std::invalid_argument);
}

} // namespace
