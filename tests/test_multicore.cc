/**
 * @file
 * Tests for the multicore machine: N main processors over one shared
 * memory system, the three ULMT serving modes (shared / percore /
 * sharded), per-tenant QoS accounting, the per-core address-slice
 * workloads, the core-sliced stat registry dump, and the v3
 * checkpoint round trip -- a restored N=4 run must finish
 * bit-identical to the uninterrupted one in every serving mode, and a
 * snapshot must be loudly rejected by a machine with a different core
 * count or serving mode.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/check.hh"
#include "ckpt/checkpoint.hh"
#include "core/factory.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/system.hh"
#include "workloads/offset.hh"
#include "workloads/workload.hh"

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

driver::SystemConfig
mcConfig(unsigned cores, core::UlmtMode mode,
         const std::string &app = "MST")
{
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app);
    cfg.cores = cores;
    cfg.ulmtMode = mode;
    return cfg;
}

std::unique_ptr<driver::System>
makeSystem(const driver::SystemConfig &cfg,
           const std::string &app = "MST", double scale = 0.01)
{
    const driver::ExperimentOptions defaults;
    auto ws = driver::makeCoreWorkloads(app, defaults.seed, scale,
                                        cfg.cores);
    const std::string name = ws[0]->name();
    auto sys = std::make_unique<driver::System>(cfg, std::move(ws),
                                                name);
    sys->setCheckpointMeta(app, defaults.seed, scale);
    return sys;
}

const std::vector<core::UlmtMode> kModes = {core::UlmtMode::Shared,
                                            core::UlmtMode::PerCore,
                                            core::UlmtMode::Sharded};

TEST(Multicore, FourCoreRunCompletesInEveryMode)
{
    // Sparse is the workload whose miss pairs actually repeat, so the
    // ULMT issues prefetches for every tenant (MST/Tree/CG's synthetic
    // traces learn pairs but re-encounter none at small scales).
    for (core::UlmtMode mode : kModes) {
        SCOPED_TRACE(core::to_string(mode));
        auto sys = makeSystem(mcConfig(4, mode, "Sparse"), "Sparse");
        const driver::RunResult r = sys->run();

        ASSERT_EQ(r.coreProc.size(), 4u);
        ASSERT_EQ(r.coreHier.size(), 4u);
        ASSERT_EQ(r.coreQos.size(), 4u);
        EXPECT_EQ(r.engineUlmt.size(),
                  mode == core::UlmtMode::PerCore ? 4u : 1u);
        EXPECT_EQ(sys->numCores(), 4u);

        for (unsigned c = 0; c < 4; ++c) {
            SCOPED_TRACE(c);
            // Every tenant ran its whole trace and touched memory.
            EXPECT_GT(r.coreProc[c].records, 0u);
            EXPECT_GT(r.coreProc[c].totalCycles, 0u);
            EXPECT_GT(r.coreHier[c].l2Misses, 0u);
            EXPECT_GT(r.coreQos[c].demandFetches, 0u);
            EXPECT_GT(r.coreQos[c].ulmtPrefetchesIssued, 0u);
        }
        // The headline cycle count is the slowest tenant.
        sim::Cycle slowest = 0;
        for (const cpu::ProcessorStats &p : r.coreProc)
            slowest = std::max(slowest, p.totalCycles);
        EXPECT_EQ(r.cycles, slowest);
    }
}

TEST(Multicore, DeterministicAcrossRuns)
{
    for (core::UlmtMode mode : kModes) {
        SCOPED_TRACE(core::to_string(mode));
        const driver::SystemConfig cfg = mcConfig(4, mode);
        const driver::RunResult a = makeSystem(cfg)->run();
        const driver::RunResult b = makeSystem(cfg)->run();
        EXPECT_EQ(driver::resultFingerprint(a),
                  driver::resultFingerprint(b));
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    }
}

/**
 * The vector-of-workloads constructor with one core and shared
 * serving IS the machine the repo always simulated: same fingerprint
 * as the classic single-workload constructor.
 */
TEST(Multicore, SingleCoreMachineMatchesLegacyConstruction)
{
    const driver::ExperimentOptions opt;
    driver::SystemConfig cfg =
        mcConfig(1, core::UlmtMode::Shared);

    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = 0.01;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System legacy(cfg, *wl);
    const driver::RunResult a = legacy.run();

    const driver::RunResult b = makeSystem(cfg)->run();
    EXPECT_EQ(driver::resultFingerprint(a),
              driver::resultFingerprint(b));
    // Single-core machines publish no per-core slices (beyond the
    // always-present QoS row) so their fingerprint stays pre-multicore.
    EXPECT_TRUE(a.coreProc.empty());
    EXPECT_EQ(a.coreQos.size(), 1u);
}

TEST(Multicore, OffsetWorkloadShiftsEveryReference)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.01;
    auto plain = workloads::makeWorkload("MST", wp);
    workloads::OffsetWorkload shifted(workloads::makeWorkload("MST", wp),
                                      /*core=*/2);

    cpu::TraceRecord a, b;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(plain->next(a), shifted.next(b));
        EXPECT_EQ(a.computeOps, b.computeOps);
        EXPECT_EQ(a.isWrite, b.isWrite);
        if (a.addr == sim::invalidAddr)
            EXPECT_EQ(b.addr, sim::invalidAddr);
        else
            EXPECT_EQ(b.addr, a.addr + 2 * workloads::coreAddrStride);
    }
}

TEST(Multicore, StatRegistryFilterSelectsOneCoreSlice)
{
    auto sys = makeSystem(mcConfig(2, core::UlmtMode::PerCore));
    (void)sys->run();
    const auto keep = [](const std::string &path) {
        return path.rfind("cpu.1.", 0) == 0;
    };
    const std::string json = sys->statRegistry().dumpJson(keep);
    EXPECT_NE(json.find("cpu.1.l2.misses"), std::string::npos);
    EXPECT_EQ(json.find("cpu.0."), std::string::npos);
    EXPECT_EQ(json.find("memsys."), std::string::npos);
}

/** Deep invariant checking stays clean on a 4-core machine. */
TEST(Multicore, DeepCheckCleanInEveryMode)
{
    for (core::UlmtMode mode : kModes) {
        SCOPED_TRACE(core::to_string(mode));
        driver::SystemConfig cfg = mcConfig(4, mode);
        cfg.check.mode = check::CheckMode::Deep;
        cfg.check.everyEvents = 4096;
        // Deep mode diffs reference models at every cadence tick; keep
        // the run short.
        EXPECT_NO_THROW((void)makeSystem(cfg, "MST", 0.003)->run());
    }
}

class MulticoreCkpt : public ::testing::TestWithParam<core::UlmtMode>
{
};

/**
 * Snapshot an N=4 machine mid-flight and restore it: the resumed run
 * must finish with a result fingerprint (which includes every
 * per-core and per-engine slice) bit-identical to both the
 * uninterrupted run and the run that paused to snapshot.
 */
TEST_P(MulticoreCkpt, RestoreMatchesStraightRun)
{
    const core::UlmtMode mode = GetParam();
    const driver::SystemConfig cfg = mcConfig(4, mode);

    const driver::RunResult straight = makeSystem(cfg)->run();
    const std::string fp = driver::resultFingerprint(straight);

    const std::string path = tmpPath("mc_" + core::to_string(mode) +
                                     ".ulmtckp");
    auto through_sys = makeSystem(cfg);
    through_sys->setCheckpointTrigger("400", path);
    const driver::RunResult through = through_sys->run();
    ASSERT_GT(through.ckptBytes, 0u) << "trigger never fired";
    EXPECT_EQ(driver::resultFingerprint(through), fp);

    const ckpt::CkptHeader h = ckpt::CheckpointImage::readHeader(path);
    EXPECT_EQ(h.cores, 4u);
    EXPECT_EQ(h.ulmtMode, static_cast<std::uint32_t>(mode));

    auto resumed_sys = makeSystem(cfg);
    resumed_sys->restoreCheckpoint(path);
    const driver::RunResult resumed = resumed_sys->run();
    EXPECT_EQ(driver::resultFingerprint(resumed), fp);
    ASSERT_EQ(resumed.coreProc.size(), straight.coreProc.size());
    for (std::size_t c = 0; c < straight.coreProc.size(); ++c) {
        EXPECT_EQ(resumed.coreProc[c].totalCycles,
                  straight.coreProc[c].totalCycles)
            << "core " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, MulticoreCkpt,
                         ::testing::ValuesIn(kModes),
                         [](const auto &info) {
                             return core::to_string(info.param);
                         });

TEST(MulticoreCkpt, RejectsCoreCountMismatch)
{
    const std::string path = tmpPath("mc_shape.ulmtckp");
    auto sys = makeSystem(mcConfig(4, core::UlmtMode::Shared));
    sys->setCheckpointTrigger("400", path);
    ASSERT_GT(sys->run().ckptBytes, 0u);

    auto two = makeSystem(mcConfig(2, core::UlmtMode::Shared));
    try {
        two->restoreCheckpoint(path);
        FAIL() << "restore accepted a 4-core snapshot on 2 cores";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("4-core machine"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MulticoreCkpt, RejectsServingModeMismatch)
{
    const std::string path = tmpPath("mc_mode.ulmtckp");
    auto sys = makeSystem(mcConfig(4, core::UlmtMode::Shared));
    sys->setCheckpointTrigger("400", path);
    ASSERT_GT(sys->run().ckptBytes, 0u);

    auto sharded = makeSystem(mcConfig(4, core::UlmtMode::Sharded));
    try {
        sharded->restoreCheckpoint(path);
        FAIL() << "restore accepted a shared-mode snapshot when "
                  "sharded";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("serving mode"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
