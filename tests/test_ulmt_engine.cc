/**
 * @file
 * Tests for the ULMT engine: the prefetch-then-learn loop of Figure 2,
 * response/occupancy accounting, queue-2 overflow, serial processing,
 * prefetch deduplication, and the cost model's placement sensitivity.
 */

#include <gtest/gtest.h>

#include "core/base_chain.hh"
#include "core/factory.hh"
#include "core/replicated.hh"
#include "core/ulmt_engine.hh"

namespace {

struct Harness
{
    explicit Harness(mem::MemProcPlacement placement =
                         mem::MemProcPlacement::InDram,
                     std::uint32_t num_rows = 4096)
    {
        tp.placement = placement;
        ms = std::make_unique<mem::MemorySystem>(eq, tp);
        core::UlmtSpec spec;
        spec.algo = core::UlmtAlgo::Repl;
        spec.numRows = num_rows;
        engine = std::make_unique<core::UlmtEngine>(
            eq, tp, *ms, core::makeAlgorithm(spec));
        ms->setObserver(engine.get(), false);
    }

    /** Deliver a miss through the demand path and run to idle. */
    void
    miss(sim::Addr line)
    {
        ms->fetchLine(eq.now(), line, sim::RequestKind::Demand);
        eq.run();
    }

    sim::EventQueue eq;
    mem::TimingParams tp;
    std::unique_ptr<mem::MemorySystem> ms;
    std::unique_ptr<core::UlmtEngine> engine;
};

TEST(UlmtEngine, ProcessesObservedMisses)
{
    Harness h;
    h.miss(0x1000);
    h.miss(0x2000);
    h.miss(0x1000);
    const core::UlmtStats &s = h.engine->stats();
    EXPECT_EQ(s.missesObserved, 3u);
    EXPECT_EQ(s.missesProcessed, 3u);
    EXPECT_EQ(s.missesDroppedQueueFull, 0u);
}

TEST(UlmtEngine, PrefetchesLearnedSuccessors)
{
    Harness h;
    // Teach the cycle twice, then the third pass should prefetch.
    for (int rep = 0; rep < 2; ++rep) {
        h.miss(0x1000);
        h.miss(0x2000);
        h.miss(0x3000);
    }
    const std::uint64_t before = h.engine->stats().prefetchesGenerated;
    h.miss(0x1000);
    // The learned successors (0x2000, 0x3000) are generated; the
    // Filter may drop ones issued very recently.
    EXPECT_GE(h.engine->stats().prefetchesGenerated, before + 2);
}

TEST(UlmtEngine, ResponsePrecedesOccupancy)
{
    Harness h;
    for (int i = 0; i < 32; ++i)
        h.miss(0x1000 + (i % 8) * 0x1000);
    const core::UlmtStats &s = h.engine->stats();
    EXPECT_GT(s.responseTime.mean(), 0.0);
    // The learning step only adds time: occupancy >= response.
    EXPECT_GE(s.occupancyTime.mean(), s.responseTime.mean());
    EXPECT_GT(s.ipc(), 0.0);
    EXPECT_LT(s.ipc(), 2.01);  // 2-issue core
}

TEST(UlmtEngine, Queue2OverflowDrops)
{
    Harness h;
    // Flood queue 2 far beyond its depth in one burst.
    for (std::uint32_t i = 0; i < 3 * h.tp.queueDepth; ++i) {
        h.ms->fetchLine(0, 0x100000 + i * 64,
                        sim::RequestKind::Demand);
    }
    h.eq.run();
    const core::UlmtStats &s = h.engine->stats();
    EXPECT_GT(s.missesDroppedQueueFull, 0u);
    EXPECT_EQ(s.missesObserved,
              s.missesProcessed + s.missesDroppedQueueFull);
}

TEST(UlmtEngine, NorthBridgePlacementIsSlower)
{
    Harness in_dram(mem::MemProcPlacement::InDram);
    Harness in_nb(mem::MemProcPlacement::NorthBridge);
    auto run = [](Harness &h) {
        for (int rep = 0; rep < 4; ++rep) {
            for (int i = 0; i < 16; ++i)
                h.miss(0x100000 + i * 0x1000);
        }
        return h.engine->stats().responseTime.mean();
    };
    const double r_dram = run(in_dram);
    const double r_nb = run(in_nb);
    // Table-access RT roughly doubles (21/56 -> 65/100): the response
    // time rises substantially.
    EXPECT_GT(r_nb, 1.4 * r_dram);
}

TEST(UlmtEngine, NeverPrefetchesTheObservedMissItself)
{
    Harness h;
    // A self-loop: successor of X is X.
    for (int i = 0; i < 6; ++i)
        h.miss(0x1000);
    // Prefetching X on a miss on X is suppressed; the filter and the
    // issue path never see it.
    EXPECT_EQ(h.ms->stats().ulmtPrefetchesIssued, 0u);
}

TEST(UlmtEngine, PageRemapKeepsEngineConsistent)
{
    Harness h;
    h.miss(0x1000);
    h.miss(0x1040);
    h.engine->pageRemap(0, 1, 4096);
    h.miss(0x2000);  // still processes afterwards
    EXPECT_EQ(h.engine->stats().missesProcessed, 3u);
}

TEST(UlmtEngine, CostScalesWithAlgorithmWork)
{
    // Chain makes NumLevels associative searches per prefetch step;
    // Replicated makes one row access.  Response must reflect that.
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);

    core::UlmtSpec chain_spec;
    chain_spec.algo = core::UlmtAlgo::Chain;
    chain_spec.numRows = 16384;
    core::UlmtEngine chain(eq, tp, ms,
                           core::makeAlgorithm(chain_spec));

    // Feed both the same repeating pattern directly.  The pattern is
    // far larger than the memory processor's cache so table lookups
    // are cold, as they are for real miss working sets.
    // Dense line addresses in a fixed permutation: the trivial
    // low-bits hash spreads them over the whole table.
    std::vector<sim::Addr> pattern;
    for (int i = 0; i < 8000; ++i)
        pattern.push_back(0x100000 + ((i * 5519) % 8000) * 64);

    for (int rep = 0; rep < 3; ++rep) {
        for (sim::Addr a : pattern) {
            chain.observeMiss(eq.now(), a, sim::RequestKind::Demand);
            eq.run();
        }
    }

    sim::EventQueue eq2;
    mem::MemorySystem ms2(eq2, tp);
    core::UlmtSpec repl_spec;
    repl_spec.algo = core::UlmtAlgo::Repl;
    repl_spec.numRows = 16384;
    core::UlmtEngine repl(eq2, tp, ms2, core::makeAlgorithm(repl_spec));
    for (int rep = 0; rep < 3; ++rep) {
        for (sim::Addr a : pattern) {
            repl.observeMiss(eq2.now(), a, sim::RequestKind::Demand);
            eq2.run();
        }
    }

    EXPECT_GT(chain.stats().responseTime.mean(),
              repl.stats().responseTime.mean());
}

} // namespace
