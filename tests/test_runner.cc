/**
 * @file
 * Determinism regression tests for the parallel experiment runner.
 *
 * The tentpole guarantee: running a sweep through the thread pool must
 * produce byte-identical simulation results to running it serially.
 * These tests pin that down with resultFingerprint(), which serializes
 * every counter of a RunResult (hex-float encoded, wall-clock
 * excluded) plus a hash of the recorded miss stream.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

/** The Figure 7 configurations for one application. */
std::vector<driver::Job>
fig7Jobs(const driver::ExperimentOptions &opt,
         const std::vector<std::string> &apps)
{
    std::vector<driver::Job> jobs;
    for (const std::string &app : apps) {
        jobs.push_back({app, driver::noPrefConfig(opt), opt});
        jobs.push_back({app, driver::conven4Config(opt), opt});
        jobs.push_back(
            {app, driver::ulmtConfig(opt, core::UlmtAlgo::Repl, app),
             opt});
        jobs.push_back(
            {app,
             driver::conven4PlusUlmtConfig(opt, core::UlmtAlgo::Repl,
                                           app),
             opt});
    }
    return jobs;
}

std::vector<std::string>
fingerprints(const std::vector<driver::RunResult> &results)
{
    std::vector<std::string> fps;
    fps.reserve(results.size());
    for (const driver::RunResult &r : results)
        fps.push_back(driver::resultFingerprint(r));
    return fps;
}

TEST(Runner, ParallelMatchesSerialBitForBit)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.1;
    const std::vector<driver::Job> jobs =
        fig7Jobs(opt, {"Mcf", "Tree"});

    const auto serial = driver::runAll(jobs, 1);
    const auto parallel = driver::runAll(jobs, 4);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    const auto fp_serial = fingerprints(serial);
    const auto fp_parallel = fingerprints(parallel);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(fp_serial[i], fp_parallel[i])
            << "job " << i << " (" << jobs[i].app << ", "
            << jobs[i].cfg.label << ") diverged under 4 workers";
    }
}

TEST(Runner, ParallelRunsAreRepeatable)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.1;
    const std::vector<driver::Job> jobs = fig7Jobs(opt, {"Gap"});

    const auto first = driver::runAll(jobs, 4);
    const auto second = driver::runAll(jobs, 4);
    EXPECT_EQ(fingerprints(first), fingerprints(second));
}

TEST(Runner, CaptureMissStreamRunsMatchesSerialCapture)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.1;
    const std::vector<std::string> apps = {"Mcf", "Tree"};

    driver::setRunnerJobs(4);
    const auto runs = driver::captureMissStreamRuns(apps, opt);
    driver::setRunnerJobs(0);

    ASSERT_EQ(runs.size(), apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::vector<sim::Addr> serial =
            driver::captureMissStream(apps[i], opt);
        EXPECT_EQ(runs[i].missStream, serial) << apps[i];
    }
}

TEST(Runner, ResultsKeepJobOrder)
{
    // Tasks finish in arbitrary order under the pool; results must
    // still land at their job's index.
    std::vector<std::function<driver::RunResult()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([i] {
            driver::RunResult r;
            r.label = std::to_string(i);
            return r;
        });
    }
    const auto results = driver::runTasks(tasks, 4);
    ASSERT_EQ(results.size(), tasks.size());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)].label,
                  std::to_string(i));
}

TEST(Runner, ParallelInvokeRunsEveryChunkOnce)
{
    std::vector<int> hits(64, 0);
    std::vector<std::function<void()>> chunks;
    for (std::size_t i = 0; i < hits.size(); ++i)
        chunks.push_back([&hits, i] { ++hits[i]; });
    driver::parallelInvoke(chunks, 4);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "chunk " << i;
}

TEST(Runner, JobsResolutionPrefersOverrideThenEnv)
{
    const char *saved = std::getenv("ULMT_JOBS");
    const std::string saved_copy = saved ? saved : "";

    ::setenv("ULMT_JOBS", "7", 1);
    EXPECT_EQ(driver::runnerJobs(), 7u);

    driver::setRunnerJobs(3);
    EXPECT_EQ(driver::runnerJobs(), 3u);

    driver::setRunnerJobs(0);  // clear the override
    EXPECT_EQ(driver::runnerJobs(), 7u);

    ::unsetenv("ULMT_JOBS");
    EXPECT_GE(driver::runnerJobs(), 1u);  // hardware fallback

    if (saved)
        ::setenv("ULMT_JOBS", saved_copy.c_str(), 1);
}

} // namespace
