/**
 * @file
 * Tests for the memory-side correlation-table cache (MSCache,
 * DESIGN.md section 14): hit/miss/LRU policy, the dirty write-back
 * buffer with row-batched drains, range invalidation on page remaps,
 * the RefTableCache lockstep oracle, end-to-end deep checking,
 * checkpoint v5 round-trips, and the v4 / missing-section restore
 * guards.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "check/ref_models.hh"
#include "ckpt/checkpoint.hh"
#include "ckpt/state.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/system.hh"
#include "mem/table_cache.hh"
#include "workloads/workload.hh"

namespace check {

/** Test-only corruption backdoor (friend of mem::TableCache). */
struct CheckTestPeer
{
    static mem::TableCacheLine &
    line(mem::TableCache &c, std::uint32_t set, std::uint32_t way)
    {
        return c.lines_[set * c.assoc_ + way];
    }

    static std::vector<sim::Addr> &
    dirtyBuf(mem::TableCache &c)
    {
        return c.dirtyBuf_;
    }
};

} // namespace check

namespace {

using check::CheckTestPeer;

constexpr std::uint32_t kLine = 32;
constexpr std::uint32_t kRow = 256;  // 8 lines per DRAM row

/** A small cache: 4 sets x 2 ways at the test geometry. */
mem::TableCache
smallCache(std::uint32_t entries = 8, std::uint32_t assoc = 2)
{
    mem::TableCacheSpec spec;
    spec.entries = entries;
    spec.assoc = assoc;
    mem::TableCache c;
    c.configure(spec, kLine, kRow);
    return c;
}

/** The address of line @p n within set @p set of a 4-set cache. */
sim::Addr
setAddr(std::uint32_t set, std::uint32_t n)
{
    return (static_cast<sim::Addr>(n) * 4 + set) * kLine;
}

// ====================================================================
// Policy unit tests
// ====================================================================

TEST(TableCacheUnit, DisabledByDefaultAndSpecOn)
{
    mem::TableCacheSpec spec;
    EXPECT_FALSE(spec.on());
    spec.entries = 256;
    EXPECT_TRUE(spec.on());

    mem::TableCache c;
    EXPECT_FALSE(c.enabled());
    const mem::TableCache &sc = smallCache();
    EXPECT_TRUE(sc.enabled());
    EXPECT_EQ(sc.numSets(), 4u);
    EXPECT_EQ(sc.assoc(), 2u);
    EXPECT_EQ(sc.lineBytes(), kLine);
    EXPECT_EQ(sc.rowBytes(), kRow);
}

TEST(TableCacheUnit, MissFillsThenHits)
{
    mem::TableCache c = smallCache();
    std::vector<sim::Addr> wbs;
    EXPECT_FALSE(c.access(0x40, false, wbs));
    EXPECT_TRUE(wbs.empty());
    EXPECT_TRUE(c.access(0x40, false, wbs));
    EXPECT_TRUE(c.access(0x47, true, wbs));  // same line, sub-line addr
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().dramAccesses, 1u);
}

TEST(TableCacheUnit, LruEvictsLeastRecentWithinTheSet)
{
    mem::TableCache c = smallCache();  // 2 ways per set
    std::vector<sim::Addr> wbs;
    c.access(setAddr(0, 0), false, wbs);
    c.access(setAddr(0, 1), false, wbs);
    c.access(setAddr(0, 0), false, wbs);  // line 0 now most recent
    c.access(setAddr(0, 2), false, wbs);  // evicts line 1
    EXPECT_TRUE(c.access(setAddr(0, 0), false, wbs));
    EXPECT_FALSE(c.access(setAddr(0, 1), false, wbs));
}

TEST(TableCacheUnit, CleanEvictionsProduceNoWritebacks)
{
    mem::TableCache c = smallCache();
    std::vector<sim::Addr> wbs;
    for (std::uint32_t n = 0; n < 8; ++n)
        c.access(setAddr(0, n), false, wbs);  // reads thrash set 0
    EXPECT_TRUE(wbs.empty());
    EXPECT_EQ(c.stats().writebacks, 0u);
    EXPECT_EQ(c.stats().dramAccesses, c.stats().misses);
}

TEST(TableCacheUnit, DirtyBufferReaccessMergesAsHit)
{
    mem::TableCache c = smallCache();
    std::vector<sim::Addr> wbs;
    c.access(setAddr(0, 0), true, wbs);   // dirty
    c.access(setAddr(0, 1), false, wbs);
    c.access(setAddr(0, 2), false, wbs);  // evicts dirty line 0 -> buf
    ASSERT_EQ(c.dirtyBuffer().size(), 1u);
    EXPECT_EQ(c.dirtyBuffer()[0], setAddr(0, 0));

    // Touching the buffered line pulls it back without DRAM traffic:
    // an MSHR-style merge, counted as a hit, still dirty.
    const std::uint64_t dram_before = c.stats().dramAccesses;
    EXPECT_TRUE(c.access(setAddr(0, 0), false, wbs));
    EXPECT_TRUE(c.dirtyBuffer().empty());
    EXPECT_EQ(c.stats().dramAccesses, dram_before);
    EXPECT_TRUE(wbs.empty());

    // ... and evicting it again re-buffers it (the dirty bit stuck).
    c.access(setAddr(0, 3), false, wbs);
    c.access(setAddr(0, 4), false, wbs);
    EXPECT_EQ(c.dirtyBuffer().size(), 1u);
}

TEST(TableCacheUnit, OverflowDrainsTheOldestEntrysWholeRow)
{
    // 16 entries x 1 way: every access maps to its own set, so dirty
    // evictions are easy to script.
    mem::TableCache c = smallCache(16, 1);
    std::vector<sim::Addr> wbs;

    // Dirty lines 0..8 of row 0 (addresses 0,0x20,..,0x100), then
    // evict each by touching its set-conflicting alias (+16 lines).
    for (std::uint32_t n = 0; n <= mem::tableCacheDirtyBufEntries;
         ++n) {
        c.access(n * kLine, true, wbs);
        c.access((n + 16) * kLine, false, wbs);
    }
    // The 9th buffered line overflowed the 8-entry buffer; the drain
    // retires every buffered line of the oldest entry's DRAM row in
    // one burst.  Lines 0..7 share row 0; line 8 starts row 1.
    ASSERT_EQ(wbs.size(), 8u);
    for (std::uint32_t n = 0; n < 8; ++n)
        EXPECT_EQ(wbs[n], n * kLine);  // FIFO order within the burst
    EXPECT_EQ(c.dirtyBuffer().size(), 1u);
    EXPECT_EQ(c.dirtyBuffer()[0], 8u * kLine);

    EXPECT_EQ(c.stats().writebacks, 8u);
    EXPECT_EQ(c.stats().rowBatchedWritebacks, 7u);
    EXPECT_EQ(c.stats().dirtyBufHighWater,
              mem::tableCacheDirtyBufEntries + 1u);
    EXPECT_EQ(c.stats().dramAccesses,
              c.stats().misses + c.stats().writebacks);
}

TEST(TableCacheUnit, InvalidateRangeFlushesDirtyAndDropsClean)
{
    mem::TableCache c = smallCache();
    std::vector<sim::Addr> wbs;
    c.access(0x00, true, wbs);   // dirty, in range
    c.access(0x20, false, wbs);  // clean, in range
    c.access(0x40, true, wbs);   // dirty, out of range

    wbs.clear();
    c.invalidateRange(0x00, 0x40, wbs);
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_EQ(wbs[0], 0x00u);
    EXPECT_EQ(c.stats().writebacks, 1u);

    // The in-range lines are gone; the out-of-range dirty survived.
    EXPECT_FALSE(c.access(0x00, false, wbs));
    EXPECT_FALSE(c.access(0x20, false, wbs));
    EXPECT_TRUE(c.access(0x40, false, wbs));
}

TEST(TableCacheUnit, InvalidateRangeCoversTheDirtyBuffer)
{
    mem::TableCache c = smallCache();
    std::vector<sim::Addr> wbs;
    c.access(setAddr(0, 0), true, wbs);
    c.access(setAddr(0, 1), false, wbs);
    c.access(setAddr(0, 2), false, wbs);  // line 0 now buffered dirty
    ASSERT_EQ(c.dirtyBuffer().size(), 1u);

    wbs.clear();
    c.invalidateRange(setAddr(0, 0), setAddr(0, 0) + kLine, wbs);
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_EQ(wbs[0], setAddr(0, 0));
    EXPECT_TRUE(c.dirtyBuffer().empty());
    EXPECT_EQ(c.stats().dramAccesses,
              c.stats().misses + c.stats().writebacks);
}

TEST(TableCacheUnit, InvariantsHoldAfterMixedTraffic)
{
    mem::TableCache c = smallCache(16, 4);
    std::vector<sim::Addr> wbs;
    for (std::uint32_t i = 0; i < 200; ++i)
        c.access((i * 7919u % 64u) * kLine, (i % 3) == 0, wbs);
    c.invalidateRange(0x100, 0x300, wbs);
    check::CheckContext ctx;
    c.checkInvariants(ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("table cache");
    EXPECT_EQ(c.stats().dramAccesses,
              c.stats().misses + c.stats().writebacks);
}

// ====================================================================
// Save / restore
// ====================================================================

TEST(TableCacheCkpt, SaveRestoreRoundTripsBitIdentically)
{
    mem::TableCache a = smallCache(16, 4);
    std::vector<sim::Addr> wbs;
    for (std::uint32_t i = 0; i < 100; ++i)
        a.access((i * 13u % 48u) * kLine, (i % 2) == 0, wbs);
    ASSERT_FALSE(a.dirtyBuffer().empty());  // buffer state matters

    ckpt::StateWriter w;
    a.saveState(w);
    ckpt::StateReader r(w.buffer());
    mem::TableCache b = smallCache(16, 4);
    b.restoreState(r);

    // Identical contents...
    std::vector<std::string> la, lb;
    a.forEachLine([&](std::uint32_t set, std::uint32_t way,
                      const mem::TableCacheLine &l) {
        la.push_back(std::to_string(set) + ":" + std::to_string(way) +
                     ":" + std::to_string(l.tag) + ":" +
                     std::to_string(l.dirty) + ":" +
                     std::to_string(l.lruStamp));
    });
    b.forEachLine([&](std::uint32_t set, std::uint32_t way,
                      const mem::TableCacheLine &l) {
        lb.push_back(std::to_string(set) + ":" + std::to_string(way) +
                     ":" + std::to_string(l.tag) + ":" +
                     std::to_string(l.dirty) + ":" +
                     std::to_string(l.lruStamp));
    });
    EXPECT_EQ(la, lb);
    EXPECT_EQ(a.dirtyBuffer(), b.dirtyBuffer());
    EXPECT_EQ(a.stats().hits, b.stats().hits);
    EXPECT_EQ(a.stats().dirtyBufHighWater, b.stats().dirtyBufHighWater);

    // ... and identical behaviour from here on.
    std::vector<sim::Addr> wa, wb2;
    for (std::uint32_t i = 0; i < 50; ++i) {
        const sim::Addr addr = (i * 5u % 48u) * kLine;
        EXPECT_EQ(a.access(addr, (i % 2) == 1, wa),
                  b.access(addr, (i % 2) == 1, wb2));
    }
    EXPECT_EQ(wa, wb2);
}

TEST(TableCacheCkpt, RestoreRejectsGeometryMismatch)
{
    mem::TableCache a = smallCache(16, 4);
    ckpt::StateWriter w;
    a.saveState(w);

    mem::TableCache b = smallCache(8, 2);
    ckpt::StateReader r(w.buffer());
    try {
        b.restoreState(r);
        FAIL() << "geometry mismatch restored";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("geometry"),
                  std::string::npos)
            << e.what();
    }
}

// ====================================================================
// RefTableCache lockstep oracle
// ====================================================================

TEST(RefTableCacheOracle, LockstepStaysInAgreement)
{
    mem::TableCache c = smallCache(16, 2);
    check::RefTableCache ref(c);
    c.setShadow(&ref);

    std::vector<sim::Addr> wbs;
    for (std::uint32_t i = 0; i < 300; ++i)
        c.access((i * 31u % 80u) * kLine, (i % 4) != 0, wbs);
    c.invalidateRange(0x200, 0x500, wbs);
    for (std::uint32_t i = 0; i < 50; ++i)
        c.access((i * 11u % 80u) * kLine, false, wbs);

    check::CheckContext ctx;
    ref.diff(c, ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("tcache lockstep");
    c.setShadow(nullptr);
}

TEST(RefTableCacheOracle, DetectsSeededDirtyBitCorruption)
{
    mem::TableCache c = smallCache(16, 2);
    check::RefTableCache ref(c);
    c.setShadow(&ref);
    std::vector<sim::Addr> wbs;
    for (std::uint32_t i = 0; i < 40; ++i)
        c.access(i * kLine, true, wbs);

    // Find a resident line and flip its dirty bit behind the oracle.
    bool flipped = false;
    for (std::uint32_t set = 0; set < c.numSets() && !flipped; ++set) {
        for (std::uint32_t way = 0; way < c.assoc(); ++way) {
            mem::TableCacheLine &l = CheckTestPeer::line(c, set, way);
            if (l.valid && l.dirty) {
                l.dirty = false;
                flipped = true;
                break;
            }
        }
    }
    ASSERT_TRUE(flipped);
    check::CheckContext ctx;
    ref.diff(c, ctx);
    EXPECT_FALSE(ctx.ok());
    c.setShadow(nullptr);
}

TEST(RefTableCacheOracle, DetectsSeededBufferCorruption)
{
    mem::TableCache c = smallCache(8, 2);
    check::RefTableCache ref(c);
    c.setShadow(&ref);
    std::vector<sim::Addr> wbs;
    c.access(setAddr(0, 0), true, wbs);
    c.access(setAddr(0, 1), false, wbs);
    c.access(setAddr(0, 2), false, wbs);
    ASSERT_FALSE(c.dirtyBuffer().empty());

    CheckTestPeer::dirtyBuf(c).pop_back();  // lose a pending line
    check::CheckContext ctx;
    ref.diff(c, ctx);
    EXPECT_FALSE(ctx.ok());
    c.setShadow(nullptr);
}

TEST(RefTableCacheOracle, ResyncAdoptsTheRealState)
{
    mem::TableCache c = smallCache(16, 2);
    std::vector<sim::Addr> wbs;
    for (std::uint32_t i = 0; i < 60; ++i)
        c.access((i * 3u % 40u) * kLine, (i % 2) == 0, wbs);

    // An oracle attached late knows nothing; resync adopts the cache
    // as ground truth, after which lockstep holds again.
    check::RefTableCache ref(c);
    ref.resync(c);
    check::CheckContext ctx;
    ref.diff(c, ctx);
    EXPECT_TRUE(ctx.ok()) << ctx.report("post-resync");

    c.setShadow(&ref);
    for (std::uint32_t i = 0; i < 60; ++i)
        c.access((i * 7u % 40u) * kLine, (i % 2) == 1, wbs);
    check::CheckContext ctx2;
    ref.diff(c, ctx2);
    EXPECT_TRUE(ctx2.ok()) << ctx2.report("post-resync lockstep");
    c.setShadow(nullptr);
}

// ====================================================================
// End-to-end System integration
// ====================================================================

driver::SystemConfig
tcacheConfig(std::uint32_t entries, std::uint32_t assoc)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.002;
    driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
    cfg.metricsInterval = 0;
    cfg.tableCache.entries = entries;
    cfg.tableCache.assoc = assoc;
    return cfg;
}

driver::RunResult
runMst(const driver::SystemConfig &cfg)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    return sys.run();
}

TEST(TableCacheEndToEnd, RunsAndReportsStats)
{
    const driver::RunResult r = runMst(tcacheConfig(256, 4));
    EXPECT_TRUE(r.tcacheOn);
    EXPECT_EQ(r.tcacheEntries, 256u);
    EXPECT_EQ(r.tcacheAssoc, 4u);
    EXPECT_GT(r.tcache.hits + r.tcache.misses, 0u);
    EXPECT_EQ(r.tcache.dramAccesses,
              r.tcache.misses + r.tcache.writebacks);
}

TEST(TableCacheEndToEnd, OffRegistersNoTcacheStats)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.001;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::SystemConfig cfg;
    cfg.metricsInterval = 0;
    driver::System sys(cfg, *wl);
    sys.run();
    EXPECT_FALSE(sys.statRegistry().has("memsys.tcache.hits"));

    auto wl2 = workloads::makeWorkload("MST", wp);
    driver::SystemConfig cfg2 = tcacheConfig(256, 4);
    driver::System sys2(cfg2, *wl2);
    sys2.run();
    EXPECT_TRUE(sys2.statRegistry().has("memsys.tcache.hits"));
}

TEST(TableCacheEndToEnd, DeepCheckingIsPassive)
{
    // The lockstep oracle must not perturb the simulation: identical
    // fingerprints with checking off and deep.
    driver::SystemConfig cfg = tcacheConfig(256, 4);
    const driver::RunResult off = runMst(cfg);
    cfg.check.mode = check::CheckMode::Deep;
    const driver::RunResult deep = runMst(cfg);
    EXPECT_EQ(driver::resultFingerprint(off),
              driver::resultFingerprint(deep));
}

TEST(TableCacheEndToEnd, RemapChurnStaysInLockstep)
{
    // Satellite: page remaps relocate table rows, so the cache's
    // lines for the migrated range must be invalidated.  Under deep
    // checking the oracle replays the same invalidations -- a missed
    // or mis-ranged flush diverges and throws.
    driver::SystemConfig cfg = tcacheConfig(1024, 4);
    cfg.vm.enabled = true;
    cfg.vm.remapRate = 500.0;
    cfg.check.mode = check::CheckMode::Deep;
    const driver::RunResult a = runMst(cfg);
    EXPECT_GT(a.vmRemaps, 0u);
    EXPECT_TRUE(a.tcacheOn);
    const driver::RunResult b = runMst(cfg);
    EXPECT_EQ(driver::resultFingerprint(a),
              driver::resultFingerprint(b));
}

// ====================================================================
// Checkpoint format v5
// ====================================================================

TEST(TableCacheCkptV5, CheckpointRestoreResumesBitIdentically)
{
    const std::string path = "test_tcache_resume.ulmtckp";
    driver::SystemConfig cfg = tcacheConfig(256, 4);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;

    driver::RunResult full;
    {
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg, *wl);
        sys.setCheckpointMeta("MST", wp.seed, wp.scale);
        sys.setCheckpointTrigger("500", path);
        full = sys.run();
        ASSERT_GT(full.ckptBytes, 0u);
    }
    ASSERT_GT(full.tcache.hits + full.tcache.misses, 0u);

    // The snapshot is v5 and carries the tcache section.
    const ckpt::CheckpointImage img =
        ckpt::CheckpointImage::readFile(path);
    EXPECT_EQ(img.header.version, ckpt::formatVersion);
    EXPECT_NE(img.findSection("tcache"), nullptr);

    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.restoreCheckpoint(path);
    const driver::RunResult resumed = sys.run();
    EXPECT_EQ(driver::resultFingerprint(full),
              driver::resultFingerprint(resumed));
    std::remove(path.c_str());
}

/** Snapshot a cache-off machine; returns the image for tampering. */
ckpt::CheckpointImage
offMachineImage(const std::string &path)
{
    driver::SystemConfig cfg = tcacheConfig(0, 4);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.setCheckpointMeta("MST", wp.seed, wp.scale);
    sys.setCheckpointTrigger("200", path);
    const driver::RunResult r = sys.run();
    EXPECT_GT(r.ckptBytes, 0u);
    return ckpt::CheckpointImage::readFile(path);
}

TEST(TableCacheCkptV5, MissingTcacheSectionRejectedWithClearMessage)
{
    const std::string path = "test_tcache_missing.ulmtckp";
    offMachineImage(path);

    // Restoring the cache-off snapshot into a cache-on machine must
    // name the real problem (no table-cache state), not the opaque
    // config fingerprint.
    driver::SystemConfig cfg = tcacheConfig(256, 4);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    try {
        sys.restoreCheckpoint(path);
        FAIL() << "sectionless restore into --table-cache machine";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("table-cache"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(TableCacheCkptV5, V4FilesStayReadableOnCacheOffMachines)
{
    const std::string path = "test_tcache_v4.ulmtckp";
    ckpt::CheckpointImage img = offMachineImage(path);

    // Forge the previous container version: a cache-off machine's
    // section list is identical in v4 and v5, so the file must stay
    // restorable there...
    img.header.version = 4;
    img.writeFile(path);
    {
        driver::SystemConfig cfg = tcacheConfig(0, 4);
        workloads::WorkloadParams wp;
        wp.scale = 0.002;
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg, *wl);
        sys.restoreCheckpoint(path);  // must not throw
        const driver::RunResult r = sys.run();
        EXPECT_GT(r.cycles, 0u);
    }

    // ... and still be rejected, clearly, by a cache-on machine.
    driver::SystemConfig cfg = tcacheConfig(256, 4);
    workloads::WorkloadParams wp;
    wp.scale = 0.002;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    try {
        sys.restoreCheckpoint(path);
        FAIL() << "v4 file restored into --table-cache machine";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("table-cache"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(TableCacheCkptV5, PreV4ContainersAreRejectedOutright)
{
    const std::string path = "test_tcache_v3.ulmtckp";
    ckpt::CheckpointImage img = offMachineImage(path);
    img.header.version = 3;
    img.writeFile(path);
    EXPECT_THROW(ckpt::CheckpointImage::readFile(path),
                 ckpt::CkptError);
    std::remove(path.c_str());
}

} // namespace
