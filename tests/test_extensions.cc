/**
 * @file
 * Tests for the extension modules: the conflict-aware wrapper
 * (Section 7 customization) and the hardware-correlation baseline.
 */

#include <gtest/gtest.h>

#include "core/conflict_aware.hh"
#include "core/replicated.hh"
#include "driver/experiment.hh"
#include "driver/hw_correlation.hh"

namespace {

core::NullCostTracker nc;

std::unique_ptr<core::ConflictAwarePrefetcher>
makeCa(double hot_factor = 2.0, std::uint32_t epoch = 256)
{
    return std::make_unique<core::ConflictAwarePrefetcher>(
        std::make_unique<core::ReplicatedPrefetcher>(
            core::chainReplDefaults(4096)),
        /*l2_sets=*/64, /*l2_line_bytes=*/64, hot_factor, epoch);
}

TEST(ConflictAware, PassesThroughWhenPressureIsEven)
{
    auto ca = makeCa();
    std::vector<sim::Addr> out;
    // Even pressure: a long repeating cycle over all sets.
    std::vector<sim::Addr> cycle;
    for (int i = 0; i < 256; ++i)
        cycle.push_back(0x10000 + ((i * 37) % 256) * 64);
    for (int rep = 0; rep < 8; ++rep) {
        for (sim::Addr m : cycle) {
            out.clear();
            ca->prefetchStep(m, out, nc);
            ca->learnStep(m, nc);
        }
    }
    EXPECT_EQ(ca->suppressed(), 0u);
}

TEST(ConflictAware, SuppressesPushesIntoHotSets)
{
    auto ca = makeCa();
    std::vector<sim::Addr> out;
    // All misses alias L2 set 0 (64 sets, line 64: stride 4096), in a
    // repeating sequence: set 0 is saturated and its prefetches must
    // be suppressed once pressure builds.
    std::vector<sim::Addr> cycle;
    for (int i = 0; i < 32; ++i)
        cycle.push_back(0x40000 + ((i * 11) % 32) * 4096);
    for (int rep = 0; rep < 40; ++rep) {
        for (sim::Addr m : cycle) {
            out.clear();
            ca->prefetchStep(m, out, nc);
            ca->learnStep(m, nc);
        }
    }
    EXPECT_GT(ca->suppressed(), 100u);
}

TEST(ConflictAware, NameAndDelegation)
{
    auto ca = makeCa();
    EXPECT_EQ(ca->name(), "Repl+CA");
    EXPECT_EQ(ca->levels(), 3u);
    // Learning still reaches the inner table.
    for (sim::Addr m : {0x1000u, 0x2000u, 0x3000u, 0x1000u, 0x2000u})
        ca->learnStep(m, nc);
    core::LevelPredictions preds;
    ca->predict(0x1000, preds);
    ASSERT_EQ(preds.size(), 3u);
    EXPECT_FALSE(preds[0].empty());
    EXPECT_EQ(preds[0].front(), 0x2000u);
    EXPECT_GT(ca->insertions(), 0u);
}

TEST(HwCorrelation, RoundsTableToPowerOfTwoBudget)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    driver::HwCorrelationEngine hw(ms, 1 << 20, /*replicated=*/false);
    // 1 MB / 20 B = 52428 rows -> 32768 rows -> 655,360 B table.
    EXPECT_EQ(hw.tableBytes(), 32768u * 20u);
    driver::HwCorrelationEngine hwr(ms, 1 << 20, /*replicated=*/true);
    EXPECT_EQ(hwr.tableBytes(), 32768u * 28u);
}

TEST(HwCorrelation, IssuesPrefetchesForLearnedPatterns)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms(eq, tp);
    driver::HwCorrelationEngine hw(ms, 1 << 20);
    for (int rep = 0; rep < 2; ++rep) {
        hw.observeMiss(eq.now(), 0x1000);
        hw.observeMiss(eq.now(), 0x2000);
        hw.observeMiss(eq.now(), 0x3000);
        eq.run();
    }
    EXPECT_GT(ms.stats().ulmtPrefetchesIssued, 0u);
}

TEST(HwCorrelation, EndToEndSpeedsUpMcf)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.1;
    const driver::RunResult base =
        driver::runOne("Mcf", driver::noPrefConfig(opt), opt);
    driver::SystemConfig cfg = driver::noPrefConfig(opt);
    cfg.hwCorrSramBytes = 4 << 20;
    cfg.hwCorrReplicated = true;
    cfg.label = "HW";
    const driver::RunResult hw = driver::runOne("Mcf", cfg, opt);
    EXPECT_GT(hw.speedup(base), 1.05);
    // The hardware engine classifies through the same push counters.
    EXPECT_GT(hw.hier.ulmtHits + hw.hier.ulmtDelayedHits, 0u);
}

TEST(HwCorrelation, UlmtIsCompetitiveWithSmallSram)
{
    // On a big-footprint app, a 256 KB SRAM table cripples the
    // hardware engine while the ULMT sizes its memory table freely.
    driver::ExperimentOptions opt;
    opt.scale = 0.2;
    const driver::RunResult base =
        driver::runOne("Gap", driver::noPrefConfig(opt), opt);
    driver::SystemConfig hw_cfg = driver::noPrefConfig(opt);
    hw_cfg.hwCorrSramBytes = 64 << 10;
    hw_cfg.hwCorrReplicated = true;
    hw_cfg.label = "HW-64KB";
    const driver::RunResult hw = driver::runOne("Gap", hw_cfg, opt);
    const driver::RunResult ulmt = driver::runOne(
        "Gap", driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "Gap"),
        opt);
    EXPECT_GE(ulmt.hier.ulmtHits + ulmt.hier.ulmtDelayedHits,
              hw.hier.ulmtHits + hw.hier.ulmtDelayedHits);
}

} // namespace
