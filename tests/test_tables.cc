/**
 * @file
 * Tests for the correlation tables and algorithms, anchored on the
 * paper's own worked example: Figure 4 runs the miss sequence
 * a,b,c,a,d,c through Base, Chain and Replicated and gives the exact
 * table contents and the prefetches issued on a subsequent miss on a.
 */

#include <gtest/gtest.h>

#include "core/base_chain.hh"
#include "core/replicated.hh"

namespace {

// Line-aligned stand-ins for the figure's a, b, c, d.
constexpr sim::Addr A = 0x1000, B = 0x2000, C = 0x3000, D = 0x4000;

core::NullCostTracker nc;

void
feed(core::CorrelationPrefetcher &algo,
     std::initializer_list<sim::Addr> misses)
{
    std::vector<sim::Addr> discard;
    for (sim::Addr m : misses) {
        discard.clear();
        algo.prefetchStep(m, discard, nc);
        algo.learnStep(m, nc);
    }
}

std::vector<sim::Addr>
prefetchesOn(core::CorrelationPrefetcher &algo, sim::Addr miss)
{
    std::vector<sim::Addr> out;
    algo.prefetchStep(miss, out, nc);
    return out;
}

core::CorrelationParams
figureParams(std::uint32_t num_succ, std::uint32_t num_levels)
{
    core::CorrelationParams p;
    p.numRows = 16;
    p.assoc = 4;
    p.numSucc = num_succ;
    p.numLevels = num_levels;
    return p;
}

TEST(Figure4, BaseLearnsAndPrefetchesImmediateSuccessors)
{
    core::BasePrefetcher base(figureParams(2, 1));
    feed(base, {A, B, C, A, D, C});
    // Figure 4-(a)(iii): on a miss on a, prefetch d then b (MRU order).
    EXPECT_EQ(prefetchesOn(base, A), (std::vector<sim::Addr>{D, B}));
    EXPECT_EQ(prefetchesOn(base, B), (std::vector<sim::Addr>{C}));
    EXPECT_EQ(prefetchesOn(base, C), (std::vector<sim::Addr>{A}));
    EXPECT_EQ(prefetchesOn(base, D), (std::vector<sim::Addr>{C}));
}

TEST(Figure4, ChainFollowsTheMruLink)
{
    core::ChainPrefetcher chain(figureParams(2, 2));
    feed(chain, {A, B, C, A, D, C});
    // Figure 4-(b)(iii): prefetch d, b; follow the MRU link to d's
    // row; prefetch c.
    EXPECT_EQ(prefetchesOn(chain, A),
              (std::vector<sim::Addr>{D, B, C}));
}

TEST(Figure4, ReplicatedKeepsTrueMruPerLevel)
{
    core::ReplicatedPrefetcher repl(figureParams(2, 2));
    feed(repl, {A, B, C, A, D, C});
    // Figure 4-(c)(iii): a's row holds level-1 {d, b} and level-2 {c}:
    // prefetch d, b, c with a single row access.
    EXPECT_EQ(prefetchesOn(repl, A),
              (std::vector<sim::Addr>{D, B, C}));

    core::LevelPredictions preds;
    repl.predict(A, preds);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0], (std::vector<sim::Addr>{D, B}));
    EXPECT_EQ(preds[1], (std::vector<sim::Addr>{C}));
}

TEST(Figure4, ChainMissesOffPathSuccessors)
{
    // The paper's accuracy example (Section 3.3.1): in the sequence
    // a,b,c,...,b,e,b,f,...  Chain prefetching on a follows the MRU
    // path through b and misses c, while Replicated still predicts c
    // at level 2.
    constexpr sim::Addr E = 0x5000, F = 0x6000;
    // Six distinct rows live at once: use a set large enough to hold
    // them so no prediction is lost to conflicts.
    core::CorrelationParams p = figureParams(2, 2);
    p.numRows = 16;
    p.assoc = 8;
    core::ChainPrefetcher chain(p);
    core::ReplicatedPrefetcher repl(p);
    for (int rep = 0; rep < 3; ++rep) {
        feed(chain, {A, B, C, B, E, B, F});
        feed(repl, {A, B, C, B, E, B, F});
    }
    const auto chain_pf = prefetchesOn(chain, A);
    EXPECT_EQ(std::count(chain_pf.begin(), chain_pf.end(), C), 0);
    core::LevelPredictions preds;
    repl.predict(A, preds);
    EXPECT_NE(std::find(preds[1].begin(), preds[1].end(), C),
              preds[1].end());
}

TEST(PairTable, SuccessorListIsMruWithLruReplacement)
{
    core::CorrelationParams p = figureParams(2, 1);
    core::PairTable table(p, 12);
    core::PairRow *row = table.findOrAlloc(A, nc);
    table.insertSuccessor(*row, B, nc);
    table.insertSuccessor(*row, C, nc);
    EXPECT_EQ(row->succ, (std::vector<sim::Addr>{C, B}));
    // Re-inserting B promotes it.
    table.insertSuccessor(*row, B, nc);
    EXPECT_EQ(row->succ, (std::vector<sim::Addr>{B, C}));
    // A third distinct successor displaces the LRU one (C).
    table.insertSuccessor(*row, D, nc);
    EXPECT_EQ(row->succ, (std::vector<sim::Addr>{D, B}));
}

TEST(PairTable, SetConflictsReplaceLruRow)
{
    core::CorrelationParams p;
    p.numRows = 2;
    p.assoc = 2;
    p.numSucc = 2;
    core::PairTable table(p, 12);
    // All addresses fall in the single set.
    table.findOrAlloc(A, nc);
    table.findOrAlloc(B, nc);
    EXPECT_EQ(table.replacements(), 0u);
    table.find(A, nc);  // touch A: B becomes LRU
    table.findOrAlloc(C, nc);
    EXPECT_EQ(table.replacements(), 1u);
    EXPECT_NE(table.findNoCost(A), nullptr);
    EXPECT_EQ(table.findNoCost(B), nullptr);
}

TEST(PairTable, SizeAccountingMatchesPaper)
{
    // Table 2: Base rows are 20 B, Chain rows 12 B, Repl rows 28 B.
    core::BasePrefetcher base(core::baseDefaults(64 * 1024));
    EXPECT_EQ(base.tableBytes(), 64u * 1024u * 20u);
    core::ChainPrefetcher chain(core::chainReplDefaults(64 * 1024));
    EXPECT_EQ(chain.tableBytes(), 64u * 1024u * 12u);
    core::ReplicatedPrefetcher repl(core::chainReplDefaults(64 * 1024));
    EXPECT_EQ(repl.tableBytes(), 64u * 1024u * 28u);
}

TEST(Replicated, StalePointersAreSkipped)
{
    // Tiny table: one set of two rows; force the row a pointer refers
    // to, to be reallocated before the next learn.
    core::CorrelationParams p;
    p.numRows = 2;
    p.assoc = 2;
    p.numSucc = 2;
    p.numLevels = 3;
    core::ReplicatedPrefetcher repl(p);
    feed(repl, {A, B, C, D});  // each alloc displaces an older row
    // No crash, and predictions never contain garbage rows: the last
    // miss D must have a row.
    core::LevelPredictions preds;
    repl.predict(D, preds);
    EXPECT_EQ(preds.size(), 3u);
}

TEST(Replicated, DeeperLevelsWithNumLevels4)
{
    // Five live rows: size the set so none is evicted.
    core::CorrelationParams p = figureParams(2, 4);
    p.numRows = 16;
    p.assoc = 8;
    core::ReplicatedPrefetcher repl(p);
    for (int rep = 0; rep < 3; ++rep)
        feed(repl, {A, B, C, D, 0x5000});
    core::LevelPredictions preds;
    repl.predict(A, preds);
    ASSERT_EQ(preds.size(), 4u);
    for (const auto &level : preds)
        ASSERT_FALSE(level.empty());
    EXPECT_EQ(preds[0].front(), B);
    EXPECT_EQ(preds[1].front(), C);
    EXPECT_EQ(preds[2].front(), D);
    EXPECT_EQ(preds[3].front(), 0x5000u);
}

TEST(PageRemap, PairTableRelocatesRowsAndSuccessors)
{
    constexpr std::uint32_t page = 4096;
    core::CorrelationParams p;
    p.numRows = 1024;
    p.assoc = 2;
    p.numSucc = 2;
    core::BasePrefetcher base(p);
    // Misses inside page 1, with successors inside the same page.
    const sim::Addr m1 = 1 * page + 0x40;
    const sim::Addr m2 = 1 * page + 0x80;
    feed(base, {m1, m2, m1, m2});
    // Remap page 1 -> page 9.
    base.onPageRemap(1, 9, page, nc);
    const sim::Addr n1 = 9 * page + 0x40;
    const sim::Addr n2 = 9 * page + 0x80;
    // The relocated rows predict relocated successors.
    core::LevelPredictions preds;
    base.predict(n1, preds);
    ASSERT_FALSE(preds[0].empty());
    EXPECT_NE(std::find(preds[0].begin(), preds[0].end(), n2),
              preds[0].end());
    // The old rows are gone.
    base.predict(m1, preds);
    EXPECT_TRUE(preds[0].empty());
}

TEST(PageRemap, ReplicatedRelocates)
{
    constexpr std::uint32_t page = 4096;
    core::CorrelationParams p;
    p.numRows = 1024;
    p.assoc = 2;
    p.numSucc = 2;
    p.numLevels = 3;
    core::ReplicatedPrefetcher repl(p);
    const sim::Addr m1 = 2 * page + 0x40;
    const sim::Addr m2 = 2 * page + 0xc0;
    feed(repl, {m1, m2, m1, m2});
    repl.onPageRemap(2, 7, page, nc);
    core::LevelPredictions preds;
    repl.predict(7 * page + 0x40, preds);
    ASSERT_FALSE(preds[0].empty());
    EXPECT_EQ(preds[0].front(), 7 * page + 0xc0);
}

TEST(Insertions, CountedForSizingCriterion)
{
    core::BasePrefetcher base(core::baseDefaults(1024));
    feed(base, {A, B, C, D});
    EXPECT_EQ(base.insertions(), 4u);
    EXPECT_EQ(base.replacements(), 0u);
}

} // namespace
