/**
 * @file
 * Tests for the memory controller: demand fetch latency, the ULMT
 * prefetch injection path (Filter, queue-3 capacity, queue-1
 * cross-match), table-access latencies per placement, and the
 * Verbose/Non-Verbose observation modes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hh"

namespace {

struct RecordingObserver : public mem::MissObserver
{
    void
    observeMiss(sim::Cycle when, sim::Addr line,
                sim::RequestKind kind) override
    {
        events.push_back({when, line, kind});
    }

    struct Event
    {
        sim::Cycle when;
        sim::Addr line;
        sim::RequestKind kind;
    };
    std::vector<Event> events;
};

struct Fixture : public ::testing::Test
{
    Fixture() : ms(eq, tp) {}

    sim::EventQueue eq;
    mem::TimingParams tp;
    mem::MemorySystem ms{eq, tp};
};

TEST_F(Fixture, DemandFetchUncontendedLatency)
{
    const sim::Cycle done =
        ms.fetchLine(0, 0x10000, sim::RequestKind::Demand);
    EXPECT_EQ(done, tp.memRowMissRt());  // cold row
    eq.run();
    const sim::Cycle done2 =
        ms.fetchLine(eq.now() + 10000, 0x10040,
                     sim::RequestKind::Demand);
    EXPECT_EQ(done2 - (eq.now() + 10000), tp.memRowHitRt());
}

TEST_F(Fixture, ObserverSeesDemandAtControllerTime)
{
    RecordingObserver obs;
    ms.setObserver(&obs, /*verbose=*/false);
    ms.fetchLine(100, 0x40, sim::RequestKind::Demand);
    ASSERT_EQ(obs.events.size(), 1u);
    EXPECT_EQ(obs.events[0].line, 0x40u);
    // Request phase: bus (4) + fixed request path (44).
    EXPECT_EQ(obs.events[0].when, 148u);
}

TEST_F(Fixture, NonVerboseHidesCpuPrefetches)
{
    RecordingObserver obs;
    ms.setObserver(&obs, /*verbose=*/false);
    ms.fetchLine(0, 0x40, sim::RequestKind::CpuPrefetch);
    EXPECT_TRUE(obs.events.empty());
    ms.setObserver(&obs, /*verbose=*/true);
    ms.fetchLine(1000, 0x80, sim::RequestKind::CpuPrefetch);
    ASSERT_EQ(obs.events.size(), 1u);
    EXPECT_EQ(obs.events[0].kind, sim::RequestKind::CpuPrefetch);
}

TEST_F(Fixture, PrefetchDeliveredToPushCallback)
{
    std::vector<std::pair<sim::Cycle, sim::Addr>> pushes;
    ms.setPushCallback([&](sim::Cycle when, sim::Addr line, unsigned) {
        pushes.emplace_back(when, line);
    });
    EXPECT_TRUE(ms.ulmtPrefetch(0, 0x1000));
    EXPECT_EQ(ms.inflightPrefetchArrival(0x1000),
              tp.bankRowMissCycles + tp.channelXferCycles + 32 + 32);
    eq.run();
    ASSERT_EQ(pushes.size(), 1u);
    EXPECT_EQ(pushes[0].second, 0x1000u);
    // Delivered and no longer in flight.
    EXPECT_EQ(ms.inflightPrefetchArrival(0x1000), sim::neverCycle);
}

TEST_F(Fixture, FilterDropsRepeats)
{
    EXPECT_TRUE(ms.ulmtPrefetch(0, 0x40));
    eq.run();
    EXPECT_FALSE(ms.ulmtPrefetch(eq.now(), 0x40));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedFilter, 1u);
    // After 32 other issued prefetches the entry ages out of the FIFO
    // (draining in between so queue 3 never rejects them).
    for (std::uint32_t i = 1; i <= 32; ++i) {
        EXPECT_TRUE(ms.ulmtPrefetch(eq.now(), 0x40 + i * 64 * 100));
        eq.run();
    }
    EXPECT_TRUE(ms.ulmtPrefetch(eq.now(), 0x40));
}

TEST_F(Fixture, Queue3CapacityBoundsInflight)
{
    std::uint32_t issued = 0;
    for (std::uint32_t i = 0; i < tp.queueDepth + 8; ++i) {
        if (ms.ulmtPrefetch(0, 0x100000 + i * 64))
            ++issued;
    }
    EXPECT_EQ(issued, tp.queueDepth);
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedQueueFull, 8u);
}

TEST_F(Fixture, DemandMatchCancelsPrefetch)
{
    ms.fetchLine(0, 0x2000, sim::RequestKind::Demand);
    EXPECT_FALSE(ms.ulmtPrefetch(10, 0x2000));
    EXPECT_EQ(ms.stats().ulmtPrefetchesDroppedDemandMatch, 1u);
    // After the demand completes the match clears.
    eq.run();
    EXPECT_TRUE(ms.ulmtPrefetch(eq.now(), 0x2000));
}

TEST_F(Fixture, DuplicateInflightPrefetchDropped)
{
    EXPECT_TRUE(ms.ulmtPrefetch(0, 0x3000));
    EXPECT_FALSE(ms.ulmtPrefetch(1, 0x3000));
}

TEST_F(Fixture, TableAccessInDramLatency)
{
    EXPECT_EQ(ms.tableAccess(0, 0x40'0000'0000ULL, false), 56u);
    // Second access to the same DRAM row: row hit -> 21 cycles.
    const sim::Cycle t2 =
        ms.tableAccess(1000, 0x40'0000'0020ULL, false);
    EXPECT_EQ(t2 - 1000, 21u);
}

TEST(MemorySystemNb, TableAccessNorthBridgeLatency)
{
    sim::EventQueue eq;
    mem::TimingParams tp;
    tp.placement = mem::MemProcPlacement::NorthBridge;
    mem::MemorySystem ms(eq, tp);
    EXPECT_EQ(ms.tableAccess(0, 0x40'0000'0000ULL, false), 100u);
    EXPECT_EQ(ms.tableAccess(1000, 0x40'0000'0020ULL, false) - 1000,
              65u);
}

TEST(MemorySystemNb, PrefetchInjectDelayApplies)
{
    sim::EventQueue eq;
    mem::TimingParams tp_dram;
    mem::TimingParams tp_nb;
    tp_nb.placement = mem::MemProcPlacement::NorthBridge;
    mem::MemorySystem in_dram(eq, tp_dram);
    mem::MemorySystem in_nb(eq, tp_nb);
    in_dram.ulmtPrefetch(0, 0x5000);
    in_nb.ulmtPrefetch(0, 0x5000);
    EXPECT_EQ(in_nb.inflightPrefetchArrival(0x5000),
              in_dram.inflightPrefetchArrival(0x5000) +
                  tp_nb.prefetchInjectDelay);
}

TEST_F(Fixture, WritebackOccupiesBusAndDram)
{
    ms.writeback(0, 0x4000);
    EXPECT_EQ(ms.stats().writebacks, 1u);
    EXPECT_EQ(ms.bus().busy(mem::BusTraffic::Writeback), 32u);
    EXPECT_EQ(ms.dram().stats().accesses, 1u);
}

} // namespace
