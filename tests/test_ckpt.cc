/**
 * @file
 * Tests for the checkpoint/restore subsystem: StateWriter/StateReader
 * and container round-trips, loud rejection of truncated/corrupted
 * snapshots, the MRU-sensitive table restores (PairTable eviction
 * ordering, Replicated trailing pointers), and the headline
 * determinism guarantee -- checkpoint -> restore -> continue produces
 * a result fingerprint bit-identical to the uninterrupted run, for
 * Base/Chain/Repl, serially and under the parallel runner, both for
 * freshly written snapshots and for the committed golden corpus
 * (which guards against on-disk format drift).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/state.hh"
#include "core/factory.hh"
#include "core/pair_table.hh"
#include "driver/experiment.hh"
#include "driver/report.hh"
#include "driver/runner.hh"

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Flip one byte of a file (XOR, so applying twice restores it). */
void
corruptByte(const std::string &path, long offset_from_start)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset_from_start, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset_from_start, SEEK_SET), 0);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
}

long
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
}

void
truncateTo(const std::string &path, long bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<char> data(static_cast<std::size_t>(bytes));
    ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
}

TEST(StateStream, ScalarsAndStringsRoundTrip)
{
    ckpt::StateWriter w;
    w.u8(0);
    w.u8(255);
    w.b(true);
    w.b(false);
    w.u32(0);
    w.u32(127);            // 1-byte varint boundary
    w.u32(128);            // 2-byte varint boundary
    w.u32(0xFFFFFFFFu);
    w.u64(0);
    w.u64(0x7FFFFFFFFFFFFFFFULL);
    w.u64(0xFFFFFFFFFFFFFFFFULL);
    w.i64(0);
    w.i64(-1);
    w.i64(std::numeric_limits<std::int64_t>::min());
    w.i64(std::numeric_limits<std::int64_t>::max());
    w.f64(0.0);
    w.f64(-0.0);
    w.f64(1.0 / 3.0);
    w.f64(std::numeric_limits<double>::infinity());
    w.str("");
    w.str("hello checkpoint");

    ckpt::StateReader r(w.buffer());
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.u8(), 255u);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.u32(), 127u);
    EXPECT_EQ(r.u32(), 128u);
    EXPECT_EQ(r.u32(), 0xFFFFFFFFu);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_EQ(r.u64(), 0x7FFFFFFFFFFFFFFFULL);
    EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFULL);
    EXPECT_EQ(r.i64(), 0);
    EXPECT_EQ(r.i64(), -1);
    EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(r.f64(), 0.0);
    {
        // -0.0 must round-trip as the exact bit pattern, not just
        // compare equal to 0.0.
        const double nz = r.f64();
        std::uint64_t bits;
        std::memcpy(&bits, &nz, sizeof(bits));
        EXPECT_EQ(bits, 0x8000000000000000ULL);
    }
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), "hello checkpoint");
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_NO_THROW(r.finish());
}

TEST(StateStream, TrailingBytesFailFinish)
{
    ckpt::StateWriter w;
    w.u64(1);
    w.u64(2);
    ckpt::StateReader r(w.buffer());
    r.u64();
    EXPECT_THROW(r.finish(), ckpt::CkptError);
}

TEST(StateStream, TruncatedReadsThrow)
{
    ckpt::StateWriter w;
    w.u64(1u << 20);  // multi-byte varint
    w.str("abcdef");
    const std::string &buf = w.buffer();

    // Any prefix of the payload must throw, never decode silently.
    for (std::size_t len = 0; len < buf.size(); ++len) {
        ckpt::StateReader r(buf.data(), len);
        EXPECT_THROW(
            {
                r.u64();
                r.str();
            },
            ckpt::CkptError)
            << "prefix length " << len;
    }
}

TEST(StateStream, CorruptBoolRejected)
{
    ckpt::StateWriter w;
    w.u8(2);  // not a valid bool encoding
    ckpt::StateReader r(w.buffer());
    EXPECT_THROW(r.b(), ckpt::CkptError);
}

TEST(ImageRoundTrip, HeaderAndSectionsPreserved)
{
    const std::string path = tmpPath("image.ulmtckp");
    ckpt::CheckpointImage img;
    img.header.configFingerprint = 0xFEEDFACECAFEBEEFULL;
    img.header.seed = 0xA11CE;
    img.header.scale = 0.125;
    img.header.cycle = 1234567;
    img.header.misses = 4242;
    img.header.workload = "MST";
    img.header.label = "Repl";
    img.addSection("alpha", std::string("\x00\x01\x02", 3));
    img.addSection("beta", "");
    img.addSection("gamma", std::string(100000, 'x'));
    const std::uint64_t bytes = img.writeFile(path);
    EXPECT_EQ(bytes, static_cast<std::uint64_t>(fileSize(path)));

    const ckpt::CheckpointImage back =
        ckpt::CheckpointImage::readFile(path);
    EXPECT_EQ(back.header.version, ckpt::formatVersion);
    EXPECT_EQ(back.header.configFingerprint, 0xFEEDFACECAFEBEEFULL);
    EXPECT_EQ(back.header.seed, 0xA11CEu);
    EXPECT_DOUBLE_EQ(back.header.scale, 0.125);
    EXPECT_EQ(back.header.cycle, 1234567u);
    EXPECT_EQ(back.header.misses, 4242u);
    EXPECT_EQ(back.header.workload, "MST");
    EXPECT_EQ(back.header.label, "Repl");
    ASSERT_EQ(back.sections().size(), 3u);
    EXPECT_EQ(back.sections()[0].first, "alpha");
    EXPECT_EQ(back.section("alpha"), std::string("\x00\x01\x02", 3));
    EXPECT_EQ(back.section("beta"), "");
    EXPECT_EQ(back.section("gamma").size(), 100000u);
    EXPECT_EQ(back.findSection("delta"), nullptr);
    EXPECT_THROW(back.section("delta"), ckpt::CkptError);

    const ckpt::CkptHeader h = ckpt::CheckpointImage::readHeader(path);
    EXPECT_EQ(h.workload, "MST");
    EXPECT_EQ(h.misses, 4242u);
}

TEST(ImageRoundTrip, EmptyImage)
{
    const std::string path = tmpPath("empty.ulmtckp");
    ckpt::CheckpointImage img;
    img.writeFile(path);
    const ckpt::CheckpointImage back =
        ckpt::CheckpointImage::readFile(path);
    EXPECT_EQ(back.sections().size(), 0u);
    EXPECT_EQ(back.payloadBytes(), 0u);
}

TEST(ImageRoundTrip, DuplicateSectionRejected)
{
    ckpt::CheckpointImage img;
    img.addSection("events", "x");
    EXPECT_THROW(img.addSection("events", "y"), ckpt::CkptError);
    EXPECT_THROW(img.addSection("", "y"), ckpt::CkptError);
}

/** A real MST snapshot shared by the corruption tests. */
class CkptCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs the fixture's tests as
        // concurrent processes sharing one temp directory.
        path_ = tmpPath(std::string("victim_") +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name() +
                        ".ulmtckp");
        driver::ExperimentOptions opt;
        opt.scale = 0.01;
        cfg_ = driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
        workloads::WorkloadParams wp;
        wp.seed = opt.seed;
        wp.scale = opt.scale;
        auto wl = workloads::makeWorkload("MST", wp);
        driver::System sys(cfg_, *wl);
        sys.setCheckpointMeta("MST", opt.seed, opt.scale);
        sys.setCheckpointTrigger("200", path_);
        const driver::RunResult r = sys.run();
        ASSERT_GT(r.ckptBytes, 0u) << "trigger never fired";
    }

    std::string path_;
    driver::SystemConfig cfg_;
};

TEST_F(CkptCorruption, MissingFileRejected)
{
    EXPECT_THROW(ckpt::CheckpointImage::readFile("/nonexistent/x.ckp"),
                 ckpt::CkptError);
}

TEST_F(CkptCorruption, BadMagicRejected)
{
    corruptByte(path_, 0);
    EXPECT_THROW(ckpt::CheckpointImage::readFile(path_),
                 ckpt::CkptError);
}

TEST_F(CkptCorruption, UnsupportedVersionRejected)
{
    corruptByte(path_, 8);  // version field
    try {
        ckpt::CheckpointImage::readFile(path_);
        FAIL() << "corrupt version accepted";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(CkptCorruption, TruncationSweepAlwaysRejected)
{
    // Every truncation point -- mid-header, mid-section, mid-payload,
    // mid-trailer -- must throw a CkptError naming the file.
    const long size = fileSize(path_);
    const std::string pristine = path_;
    for (long keep = 0; keep < size; keep += 509) {
        truncateTo(path_, keep);
        try {
            ckpt::CheckpointImage::readFile(path_);
            FAIL() << "truncated checkpoint (" << keep
                   << " bytes) accepted";
        } catch (const ckpt::CkptError &e) {
            EXPECT_NE(std::string(e.what()).find(path_),
                      std::string::npos)
                << "diagnostic must name the file: " << e.what();
        }
        SetUp();  // rewrite the victim for the next iteration
    }
}

TEST_F(CkptCorruption, FlipSweepNeverASilentPayloadChange)
{
    // Whatever single byte is flipped, loading must either throw or
    // (for flips in unchecksummed container fields, e.g. reserved
    // words or informational header fields) decode every section
    // payload bit-identically.  A silent payload change would restore
    // corrupt simulator state.
    const ckpt::CheckpointImage pristine =
        ckpt::CheckpointImage::readFile(path_);
    const long size = fileSize(path_);
    for (long off = 0; off < size; off += 331) {
        corruptByte(path_, off);
        bool threw = false;
        try {
            const ckpt::CheckpointImage img =
                ckpt::CheckpointImage::readFile(path_);
            ASSERT_EQ(img.sections().size(),
                      pristine.sections().size())
                << "offset " << off;
            for (std::size_t i = 0; i < img.sections().size(); ++i) {
                EXPECT_EQ(img.sections()[i].second,
                          pristine.sections()[i].second)
                    << "silent payload change at offset " << off;
            }
        } catch (const ckpt::CkptError &) {
            threw = true;
        }
        corruptByte(path_, off);  // restore
        (void)threw;
    }
}

TEST_F(CkptCorruption, RestoreOfCorruptedSnapshotRejected)
{
    corruptByte(path_, fileSize(path_) / 2);
    workloads::WorkloadParams wp;
    wp.scale = 0.01;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg_, *wl);
    sys.setCheckpointMeta("MST", wp.seed, wp.scale);
    EXPECT_THROW(sys.restoreCheckpoint(path_), ckpt::CkptError);
}

TEST_F(CkptCorruption, MismatchedConfigRejected)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    const driver::SystemConfig other =
        driver::ulmtConfig(opt, core::UlmtAlgo::Chain, "MST");
    workloads::WorkloadParams wp;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(other, *wl);
    sys.setCheckpointMeta("MST", wp.seed, wp.scale);
    try {
        sys.restoreCheckpoint(path_);
        FAIL() << "checkpoint restored under a different config";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("configuration"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(CkptCorruption, MismatchedWorkloadRejected)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.01;
    auto wl = workloads::makeWorkload("Tree", wp);
    driver::System sys(cfg_, *wl);
    sys.setCheckpointMeta("Tree", wp.seed, wp.scale);
    EXPECT_THROW(sys.restoreCheckpoint(path_), ckpt::CkptError);
}

// ---------------------------------------------------------------------
// Table restores: the MRU-sensitive structures.

/** Apply an identical miss sequence to both tables via the public
 *  find/alloc/insert API and require identical contents. */
void
expectSameTable(core::PairTable &a, core::PairTable &b)
{
    std::vector<std::tuple<sim::Addr, std::uint64_t,
                           std::vector<sim::Addr>>>
        ra, rb;
    a.forEachRow([&](const core::PairRow &row) {
        ra.emplace_back(row.tag, row.lruStamp, row.succ);
    });
    b.forEachRow([&](const core::PairRow &row) {
        rb.emplace_back(row.tag, row.lruStamp, row.succ);
    });
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.insertions(), b.insertions());
    EXPECT_EQ(a.replacements(), b.replacements());
}

TEST(PairTableRestore, EvictionOrderingSurvivesRestore)
{
    // Tiny table: 8 rows, assoc 2 -> 4 sets, so a modest address
    // sweep forces LRU evictions both before and after the snapshot.
    core::CorrelationParams p;
    p.numRows = 8;
    p.numSucc = 2;
    p.assoc = 2;
    core::NullCostTracker nc;

    core::PairTable live(p, 12);
    auto touch = [&](core::PairTable &t, sim::Addr miss,
                     sim::Addr succ) {
        core::PairRow *row = t.findOrAlloc(miss, nc);
        ASSERT_NE(row, nullptr);
        t.insertSuccessor(*row, succ, nc);
    };
    // Warm phase: overflow every set once and reorder some MRU lists.
    for (sim::Addr m = 0; m < 24; ++m)
        touch(live, m * 64, (m + 1) * 64);
    touch(live, 0 * 64, 5 * 64);  // MRU reorder of a surviving row

    ckpt::StateWriter w;
    live.saveState(w);
    core::PairTable restored(p, 12);
    ckpt::StateReader r(w.buffer());
    restored.restoreState(r);
    r.finish();
    expectSameTable(live, restored);

    // Continue identically: evictions after the restore must pick the
    // same LRU victims (the stamp counter and every stamp came along).
    for (sim::Addr m = 24; m < 48; ++m) {
        touch(live, m * 64, (m + 2) * 64);
        touch(restored, m * 64, (m + 2) * 64);
    }
    expectSameTable(live, restored);
}

TEST(PairTableRestore, GeometryMismatchRejected)
{
    core::CorrelationParams p;
    p.numRows = 8;
    p.numSucc = 2;
    p.assoc = 2;
    core::PairTable t(p, 12);
    ckpt::StateWriter w;
    t.saveState(w);

    core::CorrelationParams q = p;
    q.numRows = 16;
    core::PairTable other(q, 12);
    ckpt::StateReader r(w.buffer());
    EXPECT_THROW(other.restoreState(r), ckpt::CkptError);
}

/** Drive an algorithm with a miss sequence (learn + prefetch). */
void
drive(core::CorrelationPrefetcher &algo,
      const std::vector<sim::Addr> &misses,
      std::vector<sim::Addr> *out = nullptr)
{
    core::NullCostTracker nc;
    std::vector<sim::Addr> sink;
    for (sim::Addr m : misses) {
        sink.clear();
        algo.prefetchStep(m, sink, nc);
        algo.learnStep(m, nc);
        if (out)
            out->insert(out->end(), sink.begin(), sink.end());
    }
}

class AlgoRestore : public ::testing::TestWithParam<core::UlmtAlgo>
{
};

/**
 * Replicated keeps NumLevels trailing pointers into its own rows; a
 * restore must reconstruct them exactly or the first few learn steps
 * would write the wrong rows.  Run a pointer-chasing miss pattern,
 * snapshot mid-stream, and require the restored instance to emit the
 * same prefetches and reach the same predictions as the uninterrupted
 * one.  The same harness covers Base and Chain.
 */
TEST_P(AlgoRestore, MidStreamSnapshotContinuesIdentically)
{
    core::UlmtSpec spec;
    spec.algo = GetParam();
    spec.numRows = 64;  // small enough to force conflicts
    auto live = core::makeAlgorithm(spec);
    auto restored = core::makeAlgorithm(spec);

    // A looping pointer chase with some conflicting interleaves.
    std::vector<sim::Addr> warm, cont;
    sim::Addr a = 0x1000;
    for (int i = 0; i < 400; ++i) {
        a = (a * 2654435761u) & 0xFFFFC0;  // line-aligned pseudo walk
        warm.push_back(a + 0x10000);
    }
    for (int i = 0; i < 400; ++i)
        cont.push_back(warm[i % 200]);  // revisit learned edges

    drive(*live, warm);
    ckpt::StateWriter w;
    live->saveState(w);
    ckpt::StateReader r(w.buffer());
    restored->restoreState(r);
    r.finish();

    EXPECT_EQ(live->insertions(), restored->insertions());
    EXPECT_EQ(live->replacements(), restored->replacements());

    std::vector<sim::Addr> outLive, outRestored;
    drive(*live, cont, &outLive);
    drive(*restored, cont, &outRestored);
    EXPECT_EQ(outLive, outRestored);

    core::LevelPredictions pl, pr;
    live->predict(warm[7], pl);
    restored->predict(warm[7], pr);
    EXPECT_EQ(pl, pr);
}

INSTANTIATE_TEST_SUITE_P(Algos, AlgoRestore,
                         ::testing::Values(core::UlmtAlgo::Base,
                                           core::UlmtAlgo::Chain,
                                           core::UlmtAlgo::Repl),
                         [](const auto &info) {
                             return core::to_string(info.param);
                         });

TEST(AlgoRestore, UncheckpointableAlgorithmRefusesLoudly)
{
    core::UlmtSpec spec;
    spec.algo = core::UlmtAlgo::Adaptive;
    spec.numRows = 64;
    auto algo = core::makeAlgorithm(spec);
    ckpt::StateWriter w;
    try {
        algo->saveState(w);
        FAIL() << "unsupported algorithm serialized silently";
    } catch (const ckpt::CkptError &e) {
        EXPECT_NE(std::string(e.what()).find("does not support"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// The acceptance criterion: full-system determinism across a restore.

struct SystemCase
{
    const char *app;
    core::UlmtAlgo algo;
};

class SystemRoundTrip : public ::testing::TestWithParam<SystemCase>
{
};

/**
 * Straight-through, checkpoint-and-continue, and restore-and-continue
 * must all land on one bit-identical result fingerprint.
 */
TEST_P(SystemRoundTrip, RestoreFingerprintMatchesStraightRun)
{
    const SystemCase c = GetParam();
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    const driver::SystemConfig cfg =
        driver::ulmtConfig(opt, c.algo, c.app);

    const driver::RunResult straight = driver::runOne(c.app, cfg, opt);
    const std::string fp = driver::resultFingerprint(straight);

    const std::string path = tmpPath(std::string(c.app) + "_" +
                                     core::to_string(c.algo) +
                                     ".ulmtckp");
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload(c.app, wp);
    driver::System sys(cfg, *wl);
    sys.setCheckpointMeta(c.app, opt.seed, opt.scale);
    sys.setCheckpointTrigger("200", path);
    const driver::RunResult through = sys.run();
    ASSERT_GT(through.ckptBytes, 0u) << "trigger never fired";

    // Pausing to snapshot must not perturb the run itself...
    EXPECT_EQ(driver::resultFingerprint(through), fp);

    // ...and resuming from the snapshot must finish bit-identically.
    const driver::RunResult resumed = driver::runSampled(cfg, path);
    EXPECT_GT(resumed.ckptRestoreSeconds, 0.0);
    EXPECT_EQ(driver::resultFingerprint(resumed), fp);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, SystemRoundTrip,
    ::testing::Values(SystemCase{"MST", core::UlmtAlgo::Base},
                      SystemCase{"MST", core::UlmtAlgo::Chain},
                      SystemCase{"MST", core::UlmtAlgo::Repl},
                      SystemCase{"Tree", core::UlmtAlgo::Base},
                      SystemCase{"Tree", core::UlmtAlgo::Chain},
                      SystemCase{"Tree", core::UlmtAlgo::Repl}),
    [](const auto &info) {
        return std::string(info.param.app) + "_" +
               core::to_string(info.param.algo);
    });

TEST(SystemRoundTrip, CycleTriggerAlsoRoundTrips)
{
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    const driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
    const driver::RunResult straight = driver::runOne("MST", cfg, opt);
    ASSERT_GT(straight.cycles, 20000u);

    const std::string path = tmpPath("mst_cycle.ulmtckp");
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.setCheckpointMeta("MST", opt.seed, opt.scale);
    sys.setCheckpointTrigger("20000c", path);
    const driver::RunResult through = sys.run();
    ASSERT_GT(through.ckptBytes, 0u);
    EXPECT_GE(ckpt::CheckpointImage::readHeader(path).cycle, 20000u);

    const driver::RunResult resumed = driver::runSampled(cfg, path);
    EXPECT_EQ(driver::resultFingerprint(resumed),
              driver::resultFingerprint(straight));
}

TEST(SystemRoundTrip, SampledRunMayChangeMetricsInterval)
{
    // The sampled-run use case: re-measure a warm snapshot with
    // different sampling settings.  metricsInterval is deliberately
    // outside the config fingerprint, and passive sampling must not
    // perturb the simulated outcome.
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    const driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
    const driver::RunResult straight = driver::runOne("MST", cfg, opt);

    const std::string path = tmpPath("mst_sampled.ulmtckp");
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.setCheckpointMeta("MST", opt.seed, opt.scale);
    sys.setCheckpointTrigger("200", path);
    ASSERT_GT(sys.run().ckptBytes, 0u);

    driver::SystemConfig dense = cfg;
    dense.metricsInterval = 1024;
    const driver::RunResult resumed = driver::runSampled(dense, path);
    EXPECT_EQ(driver::resultFingerprint(resumed),
              driver::resultFingerprint(straight));
}

TEST(SystemRoundTrip, ParallelRestoresMatchSerialRuns)
{
    // The same snapshot restored concurrently across the runner's
    // worker pool must stay bit-identical to the serial straight run.
    driver::ExperimentOptions opt;
    opt.scale = 0.01;
    const driver::SystemConfig cfg =
        driver::ulmtConfig(opt, core::UlmtAlgo::Repl, "MST");
    const driver::RunResult straight = driver::runOne("MST", cfg, opt);
    const std::string fp = driver::resultFingerprint(straight);

    const std::string path = tmpPath("mst_par.ulmtckp");
    workloads::WorkloadParams wp;
    wp.seed = opt.seed;
    wp.scale = opt.scale;
    auto wl = workloads::makeWorkload("MST", wp);
    driver::System sys(cfg, *wl);
    sys.setCheckpointMeta("MST", opt.seed, opt.scale);
    sys.setCheckpointTrigger("200", path);
    ASSERT_GT(sys.run().ckptBytes, 0u);

    std::vector<std::function<driver::RunResult()>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.push_back([&] { return driver::runSampled(cfg, path); });
    const std::vector<driver::RunResult> results =
        driver::runTasks(tasks, 4);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results)
        EXPECT_EQ(driver::resultFingerprint(r), fp);
}

TEST(ListWorkloads, EnumeratesThePaperApplications)
{
    const std::vector<std::string> &apps = driver::listWorkloads();
    EXPECT_GE(apps.size(), 9u);
    EXPECT_NE(std::find(apps.begin(), apps.end(), "MST"), apps.end());
    EXPECT_NE(std::find(apps.begin(), apps.end(), "Tree"), apps.end());
    EXPECT_NE(std::find(apps.begin(), apps.end(), "Mcf"), apps.end());
}

// ---------------------------------------------------------------------
// The committed golden corpus: on-disk format-drift guard.  Each
// snapshot is self-describing (workload/seed/scale/label in the
// header), so the test reconstructs the exact configuration it was
// taken under and compares against a live straight-through run.

class GoldenCkptCorpus : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoldenCkptCorpus, RestoreFingerprintMatchesStraightRun)
{
    const std::string path =
        std::string(ULMT_SOURCE_DIR) + "/corpus/ckpt/" + GetParam();
    const ckpt::CkptHeader h = ckpt::CheckpointImage::readHeader(path);

    driver::ExperimentOptions opt;
    opt.scale = h.scale;
    opt.seed = h.seed;
    const driver::SystemConfig cfg = driver::ulmtConfig(
        opt, core::parseUlmtAlgo(h.label), h.workload);

    const driver::RunResult straight =
        driver::runOne(h.workload, cfg, opt);
    const driver::RunResult resumed = driver::runSampled(cfg, path);
    EXPECT_EQ(driver::resultFingerprint(resumed),
              driver::resultFingerprint(straight));
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCkptCorpus,
                         ::testing::Values("mst_base.ulmtckp",
                                           "mst_chain.ulmtckp",
                                           "mst_repl.ulmtckp",
                                           "tree_base.ulmtckp",
                                           "tree_chain.ulmtckp",
                                           "tree_repl.ulmtckp"),
                         [](const auto &info) {
                             std::string n(info.param);
                             for (char &c : n)
                                 if (c == '.')
                                     c = '_';
                             return n;
                         });

} // namespace
