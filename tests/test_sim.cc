/**
 * @file
 * Unit tests for the simulation kernel: event queue, resource
 * timelines, RNG determinism, statistics containers, logging helpers.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleEventsKeepSchedulingOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, EventLimitStopsRun)
{
    sim::EventQueue eq;
    std::function<void()> forever = [&] { eq.scheduleIn(1, forever); };
    eq.schedule(0, forever);
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(ResourceTimeline, SerializesOverlappingRequests)
{
    sim::ResourceTimeline tl;
    EXPECT_EQ(tl.acquire(0, 10), 0u);
    EXPECT_EQ(tl.acquire(5, 10), 10u);   // busy until 10
    EXPECT_EQ(tl.acquire(50, 10), 50u);  // idle gap
    EXPECT_EQ(tl.busyTotal(), 30u);
}

TEST(EventQueue, LargeCaptureFallsBackToHeap)
{
    // Captures bigger than the inline buffer must survive the move
    // into the queue and run intact.
    sim::EventQueue eq;
    std::array<std::uint64_t, 16> payload;
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    std::uint64_t expect = 0;
    for (std::uint64_t v : payload)
        expect += v;
    EXPECT_EQ(sum, expect);
}

TEST(EventQueue, MoveOnlyCapturesAreSupported)
{
    sim::EventQueue eq;
    auto value = std::make_unique<int>(17);
    int seen = 0;
    eq.schedule(1, [v = std::move(value), &seen] { seen = *v; });
    eq.run();
    EXPECT_EQ(seen, 17);
}

TEST(PriorityTimeline, HighDisplacesUnstartedLowButNotInProgress)
{
    {
        // The low booking has not started by the high request's ready
        // time: the controller reorders its queues and the prefetch
        // transfer is pushed behind.
        sim::PriorityTimeline tl;
        EXPECT_EQ(tl.acquire(20, 10, false), 20u);  // low, [20,30)
        EXPECT_EQ(tl.acquire(15, 10, true), 15u);   // displaces it
    }
    {
        // A low transfer already in progress is non-preemptive: the
        // high request waits for its completion.
        sim::PriorityTimeline tl;
        EXPECT_EQ(tl.acquire(0, 20, false), 0u);  // low, [0,20)
        EXPECT_EQ(tl.acquire(5, 10, true), 20u);
    }
}

TEST(PriorityTimeline, OvercommittedBookingsStayConsistent)
{
    // Displacement makes the booked list non-disjoint (the displaced
    // low booking still occupies its old slot).  Later requests of
    // both classes must still be placed against every live booking.
    sim::PriorityTimeline tl;
    EXPECT_EQ(tl.acquire(0, 10, false), 0u);    // low, [0,10)
    EXPECT_EQ(tl.acquire(20, 10, false), 20u);  // low, [20,30)
    EXPECT_EQ(tl.acquire(15, 10, true), 15u);   // high, [15,25)

    // Another high request: waits for the high booking, skips the
    // displaced low one.
    EXPECT_EQ(tl.acquire(15, 10, true), 25u);  // high, [25,35)

    // A low request respects everything, including the overcommitted
    // region: first idle cycle after all bookings is 35.
    EXPECT_EQ(tl.acquire(15, 5, false), 35u);
    EXPECT_EQ(tl.busyTotal(), 10u + 10u + 10u + 10u + 5u);
}

TEST(PriorityTimeline, OutOfOrderReadyFallsBackToFullScan)
{
    // Advance the gap-search cursor far ahead, then issue a request
    // with an earlier ready time: it must still see the old bookings.
    sim::PriorityTimeline tl;
    EXPECT_EQ(tl.acquire(0, 10, true), 0u);       // [0,10)
    EXPECT_EQ(tl.acquire(1000, 10, true), 1000u); // cursor past [0,10)
    EXPECT_EQ(tl.acquire(0, 10, true), 10u);      // not 0: slot taken
}

TEST(PriorityTimeline, PruneMarginBoundary)
{
    // Bookings are pruned only once they end a full margin (16384
    // cycles) behind the newest ready time; a booking ending exactly
    // at the boundary is dropped, one cycle later it is kept.  Either
    // way placements stay correct because pruned bookings can never
    // overlap a request's ready window.
    constexpr sim::Cycle margin = 16384;
    {
        sim::PriorityTimeline tl;
        EXPECT_EQ(tl.acquire(0, 10, true), 0u);  // ends at 10
        // ready - margin == 10: the booking is pruned, and the new
        // request lands at its ready time on the now-idle resource.
        EXPECT_EQ(tl.acquire(margin + 10, 10, true), margin + 10);
    }
    {
        sim::PriorityTimeline tl;
        // A transfer still running inside the margin window is kept
        // and serializes same-class requests behind it.
        const sim::Cycle start = tl.acquire(0, margin + 50, true);
        EXPECT_EQ(start, 0u);
        EXPECT_EQ(tl.acquire(margin + 20, 10, true), margin + 50);
    }
    {
        // Prune must shift the cached cursor along with the erased
        // prefix; otherwise later same-ready requests would be placed
        // against the wrong bookings and overlap.
        sim::PriorityTimeline tl;
        for (sim::Cycle r = 0; r < 8; ++r)
            EXPECT_EQ(tl.acquire(r * 100, 10, true), r * 100);
        const sim::Cycle far = 10 * margin;
        EXPECT_EQ(tl.acquire(far, 10, true), far);  // prunes prefix
        EXPECT_EQ(tl.acquire(far, 10, true), far + 10);
        EXPECT_EQ(tl.acquire(far, 10, true), far + 20);
    }
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal &= va == b.next();
        any_diff_seed |= va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BelowStaysInRange)
{
    sim::Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, RealIsUnitInterval)
{
    sim::Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SampleStat, TracksMoments)
{
    sim::SampleStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(10);
    s.sample(20);
    s.sample(30);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(BinnedHistogram, PaperBins)
{
    // The Figure 6 bins.
    sim::BinnedHistogram h({0.0, 80.0, 200.0, 280.0});
    h.sample(0);
    h.sample(79);
    h.sample(80);
    h.sample(279);
    h.sample(280);
    h.sample(100000);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 2.0 / 6.0);
}

TEST(Logging, StrformatFormats)
{
    EXPECT_EQ(sim::strformat("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(sim::strformat("%05.1f", 2.25), "002.2");
}

} // namespace
