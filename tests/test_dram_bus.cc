/**
 * @file
 * Tests for the DRAM model, the front-side bus, and the priority
 * timeline, including the paper's contention-free latency targets
 * (Table 3).
 */

#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/dram.hh"
#include "mem/timing_params.hh"
#include "sim/event_queue.hh"

namespace {

TEST(TimingParams, Table3RoundTrips)
{
    mem::TimingParams tp;
    EXPECT_EQ(tp.memRowHitRt(), 208u);
    EXPECT_EQ(tp.memRowMissRt(), 243u);
    EXPECT_EQ(tp.busDataOccupancy(64), 32u);  // 8 beats * 4 cycles
    EXPECT_EQ(tp.busDataOccupancy(8), 4u);
    EXPECT_EQ(tp.busRequestOccupancy(), 4u);
}

TEST(Dram, RowHitVsMiss)
{
    mem::TimingParams tp;
    mem::Dram dram(tp);
    // Cold access: row miss.
    auto r1 = dram.accessLine(0, 0x1000, true);
    EXPECT_FALSE(r1.rowHit);
    EXPECT_EQ(r1.done, tp.bankRowMissCycles + tp.channelXferCycles);
    // Same row, later: row hit.
    auto r2 = dram.accessLine(10000, 0x1040, true);
    EXPECT_TRUE(r2.rowHit);
    EXPECT_EQ(r2.done, 10000 + tp.bankRowHitCycles +
                           tp.channelXferCycles);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, TableAccessLatencies)
{
    mem::TimingParams tp;
    mem::Dram dram(tp);
    // In-DRAM: no channel crossing; cold = row miss.
    auto r = dram.accessTable(0, 0x2000, /*through_channel=*/false);
    EXPECT_EQ(r.done, tp.tableBankRowMissCycles);
    // With the fixed overhead this gives the paper's 56-cycle RT.
    EXPECT_EQ(r.done + tp.tableAccessFixedDram, 56u);
    auto r2 = dram.accessTable(1000, 0x2020, false);
    EXPECT_EQ(r2.done + tp.tableAccessFixedDram - 1000, 21u);

    // North Bridge: channel crossing; 100/65-cycle RTs.
    mem::Dram dram2(tp);
    auto n1 = dram2.accessTable(0, 0x2000, true);
    EXPECT_EQ(n1.done + tp.tableAccessFixedNorthBridge, 100u);
    auto n2 = dram2.accessTable(1000, 0x2020, true);
    EXPECT_EQ(n2.done + tp.tableAccessFixedNorthBridge - 1000, 65u);
}

TEST(Dram, BankConflictsSerialize)
{
    mem::TimingParams tp;
    mem::Dram dram(tp);
    // Two accesses to different rows of the same bank at the same time
    // serialize at the bank.
    const sim::Addr a = 0x0;
    const sim::Addr b =
        static_cast<sim::Addr>(tp.dramRowBytes) * tp.dramChannels *
        tp.dramBanksPerChannel;  // same channel+bank, different row
    auto r1 = dram.accessLine(0, a, true);
    auto r2 = dram.accessLine(0, b, true);
    EXPECT_FALSE(r2.rowHit);
    EXPECT_GE(r2.done, r1.done);
    EXPECT_GE(r2.done, 2 * tp.bankRowMissCycles);
}

TEST(Dram, ChannelsAreParallel)
{
    mem::TimingParams tp;
    mem::Dram dram(tp);
    // Adjacent rows go to different channels; simultaneous accesses
    // don't serialize at a shared channel.
    auto r1 = dram.accessLine(0, 0, true);
    auto r2 = dram.accessLine(0, tp.dramRowBytes, true);
    EXPECT_EQ(r1.done, r2.done);
}

TEST(Bus, UtilizationByClass)
{
    mem::Bus bus;
    bus.transfer(0, 4, mem::BusTraffic::DemandRequest);
    bus.transfer(0, 32, mem::BusTraffic::DemandData);
    bus.transfer(0, 32, mem::BusTraffic::UlmtPrefetchData);
    bus.transfer(0, 32, mem::BusTraffic::Writeback);
    EXPECT_EQ(bus.busyTotal(), 100u);
    EXPECT_EQ(bus.busy(mem::BusTraffic::DemandData), 32u);
    EXPECT_EQ(bus.busyPrefetch(), 32u);
}

TEST(Bus, DemandOutranksPrefetchData)
{
    mem::Bus bus;
    // A queued prefetch burst must not delay demand data.
    for (int i = 0; i < 8; ++i)
        bus.transfer(0, 32, mem::BusTraffic::UlmtPrefetchData);
    const sim::Cycle done =
        bus.transfer(40, 32, mem::BusTraffic::DemandData);
    // At most one in-progress low transfer can block it.
    EXPECT_LE(done, 40u + 32u + 32u);
}

TEST(PriorityTimeline, FcfsWithinClass)
{
    sim::PriorityTimeline tl;
    EXPECT_EQ(tl.acquire(0, 10, true), 0u);
    EXPECT_EQ(tl.acquire(0, 10, true), 10u);
    EXPECT_EQ(tl.acquire(5, 10, true), 20u);
    EXPECT_EQ(tl.busyTotal(), 30u);
}

TEST(PriorityTimeline, EarlierReadyUsesIdleGap)
{
    sim::PriorityTimeline tl;
    // A booking far in the future must not delay an earlier request.
    EXPECT_EQ(tl.acquire(1000, 10, true), 1000u);
    EXPECT_EQ(tl.acquire(0, 10, true), 0u);
    // And a gap between bookings is usable if it fits.
    EXPECT_EQ(tl.acquire(0, 10, true), 10u);
    EXPECT_EQ(tl.acquire(0, 2000, true), 1010u);  // doesn't fit gap
}

TEST(PriorityTimeline, HighDisplacesQueuedLow)
{
    sim::PriorityTimeline tl;
    // Lows queued into the future...
    EXPECT_EQ(tl.acquire(100, 50, false), 100u);
    EXPECT_EQ(tl.acquire(100, 50, false), 150u);
    // ...do not delay a high that becomes ready before they start.
    EXPECT_EQ(tl.acquire(50, 20, true), 50u);
}

TEST(PriorityTimeline, HighWaitsForStartedLow)
{
    sim::PriorityTimeline tl;
    EXPECT_EQ(tl.acquire(0, 50, false), 0u);  // starts immediately
    // High becomes ready mid-transfer: waits for it to finish.
    EXPECT_EQ(tl.acquire(20, 10, true), 50u);
}

TEST(PriorityTimeline, LowRespectsBookingsButUsesIdleGaps)
{
    sim::PriorityTimeline tl;
    tl.acquire(0, 100, true);
    EXPECT_EQ(tl.acquire(0, 10, false), 100u);
    tl.acquire(200, 100, true);
    // Work-conserving: the low slots into the idle gap before the
    // future high booking, but never overlaps any booking.
    EXPECT_EQ(tl.acquire(0, 10, false), 110u);
    // No gap large enough before the high: it lands after.
    EXPECT_EQ(tl.acquire(0, 100, false), 300u);
}

} // namespace
